"""Taillard benchmark instance generator.

Taillard (1993, *Benchmarks for basic scheduling problems*) generates
flow-shop instances with a portable linear-congruential pseudo-random
generator (Bratley, Fox and Schrage's ``unif`` with ``a = 16807`` and
``m = 2^31 - 1``) producing integer processing times uniformly distributed
in ``[1, 99]``.  Given the *time seed* of an instance, the generator
reproduces the published processing-time matrix exactly.

The paper evaluates the largest 20-machine classes of this benchmark:
``20x20``, ``50x20``, ``100x20`` and ``200x20`` (the ``500x20`` class is
excluded because it does not fit in the CPU memory of their testbed).

The exact published time seeds are not bundled with this reproduction for
every instance; :data:`TAILLARD_TIME_SEEDS` carries the seeds that are, and
any other instance index falls back to a deterministic synthetic seed (the
instance is then flagged ``metadata["synthetic"] = True``).  Because the
processing times follow the same U(1, 99) distribution either way, the data
volume and kernel cost — which is what drives the paper's performance study
— are unaffected.  See DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "TaillardRNG",
    "TaillardGenerator",
    "taillard_instance",
    "TAILLARD_CLASSES",
    "TAILLARD_TIME_SEEDS",
    "PAPER_INSTANCE_CLASSES",
]


#: The (n_jobs, n_machines) classes defined by Taillard's benchmark.
TAILLARD_CLASSES: tuple[tuple[int, int], ...] = (
    (20, 5),
    (20, 10),
    (20, 20),
    (50, 5),
    (50, 10),
    (50, 20),
    (100, 5),
    (100, 10),
    (100, 20),
    (200, 10),
    (200, 20),
    (500, 20),
)

#: The classes used in the paper's evaluation (all with m = 20, 500 jobs excluded).
PAPER_INSTANCE_CLASSES: tuple[tuple[int, int], ...] = (
    (20, 20),
    (50, 20),
    (100, 20),
    (200, 20),
)

#: Published time seeds known to this reproduction, keyed by (n, m, index)
#: where ``index`` is 1-based within the class.  ta001 = 20x5 instance #1.
TAILLARD_TIME_SEEDS: dict[tuple[int, int, int], int] = {
    (20, 5, 1): 873654221,
    (20, 5, 2): 379008056,
    (20, 5, 3): 1866992158,
    (20, 5, 4): 216771124,
    (20, 5, 5): 495070989,
}


class TaillardRNG:
    """Taillard's portable uniform pseudo-random generator.

    Implements the classic Lehmer / Park-Miller minimal standard generator
    (``x <- 16807 * x mod (2^31 - 1)``) using the Schrage decomposition so
    that every intermediate value fits in 32-bit arithmetic, exactly as in
    the published Pascal/C reference code.
    """

    A = 16807
    B = 127773
    C = 2836
    M = 2**31 - 1

    def __init__(self, seed: int):
        seed = int(seed)
        if not 0 < seed < self.M:
            raise ValueError(f"seed must be in (0, {self.M}); got {seed}")
        self._state = seed

    @property
    def state(self) -> int:
        """Current internal state (useful for checkpointing)."""
        return self._state

    def next_float(self) -> float:
        """Next uniform deviate in ``(0, 1)``."""
        k = self._state // self.B
        self._state = self.A * (self._state % self.B) - k * self.C
        if self._state < 0:
            self._state += self.M
        return self._state / self.M

    def next_int(self, low: int, high: int) -> int:
        """Next integer uniform in ``[low, high]`` (inclusive), Taillard's ``unif``."""
        if high < low:
            raise ValueError("high must be >= low")
        value = low + int(self.next_float() * (high - low + 1))
        return min(value, high)

    def __iter__(self) -> Iterator[float]:  # pragma: no cover - convenience
        while True:
            yield self.next_float()


def _synthetic_time_seed(n_jobs: int, n_machines: int, index: int) -> int:
    """Deterministic stand-in seed for instances whose published seed is absent."""
    mixed = (n_jobs * 1_000_003 + n_machines * 10_007 + index * 97) % (TaillardRNG.M - 1)
    return mixed + 1


@dataclass(frozen=True)
class TaillardGenerator:
    """Generator of Taillard-style flow-shop instances.

    Parameters
    ----------
    n_jobs, n_machines:
        Instance dimensions.
    time_seed:
        Seed of the processing-time generator.  When omitted the published
        seed is used if known, otherwise a deterministic synthetic seed.
    index:
        1-based index of the instance within its class (used only for
        naming and seed lookup).
    """

    n_jobs: int
    n_machines: int
    time_seed: int | None = None
    index: int = 1

    def resolved_seed(self) -> tuple[int, bool]:
        """Return ``(seed, synthetic)`` where ``synthetic`` marks fallback seeds."""
        if self.time_seed is not None:
            return int(self.time_seed), False
        key = (self.n_jobs, self.n_machines, self.index)
        if key in TAILLARD_TIME_SEEDS:
            return TAILLARD_TIME_SEEDS[key], False
        return _synthetic_time_seed(self.n_jobs, self.n_machines, self.index), True

    def processing_times(self) -> np.ndarray:
        """Generate the ``(n, m)`` processing-time matrix.

        Taillard's reference generator fills the matrix machine-by-machine:
        for each machine ``k`` (outer loop) and each job ``j`` (inner loop)
        the next ``unif(1, 99)`` deviate becomes ``p[j, k]``.
        """
        seed, _ = self.resolved_seed()
        rng = TaillardRNG(seed)
        n, m = self.n_jobs, self.n_machines
        pt = np.zeros((n, m), dtype=np.int64)
        for k in range(m):
            for j in range(n):
                pt[j, k] = rng.next_int(1, 99)
        return pt

    def build(self) -> FlowShopInstance:
        """Generate the :class:`FlowShopInstance`."""
        seed, synthetic = self.resolved_seed()
        name = f"ta_{self.n_jobs}x{self.n_machines}_{self.index:02d}"
        metadata = {
            "generator": "taillard",
            "time_seed": seed,
            "synthetic": synthetic,
            "class": (self.n_jobs, self.n_machines),
            "index": self.index,
        }
        return FlowShopInstance(self.processing_times(), name=name, metadata=metadata)


def taillard_instance(
    n_jobs: int,
    n_machines: int,
    index: int = 1,
    time_seed: int | None = None,
) -> FlowShopInstance:
    """Convenience wrapper building one Taillard-style instance.

    Examples
    --------
    >>> inst = taillard_instance(20, 5, index=1)
    >>> inst.shape
    (20, 5)
    >>> bool(inst.processing_times.min() >= 1 and inst.processing_times.max() <= 99)
    True
    """
    if (n_jobs, n_machines) not in TAILLARD_CLASSES and time_seed is None:
        # Non-standard sizes are allowed (useful for tests) but always synthetic.
        pass
    return TaillardGenerator(n_jobs, n_machines, time_seed=time_seed, index=index).build()
