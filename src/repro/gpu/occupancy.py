"""CUDA-style occupancy calculator.

The paper leans on the "CUDA GPU occupancy calculator" to explain why the
shared-memory placement behaves differently for small and large instances:
the number of *active warps* per multiprocessor is limited by

1. the maximum number of resident blocks per SM,
2. the maximum number of resident warps per SM,
3. the register file (registers/thread x threads/block x blocks),
4. the shared memory consumed by each block.

With 256-thread blocks and 26 registers per thread (the kernel's register
footprint reported in the paper), the register file limits Fermi to 32
active warps; once the shared-memory placement is enabled, the per-block
shared allocation becomes the binding constraint for the larger instances
and the active-warp count drops — which is exactly the knee the paper
observes in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec

__all__ = ["OccupancyResult", "OccupancyCalculator"]


def _floor_to_multiple(value: int, multiple: int) -> int:
    return (value // multiple) * multiple


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of an occupancy computation for one kernel configuration."""

    threads_per_block: int
    registers_per_thread: int
    shared_memory_per_block: int
    #: resident blocks per multiprocessor
    active_blocks_per_sm: int
    #: resident warps per multiprocessor
    active_warps_per_sm: int
    #: which resource is binding: "blocks", "warps", "registers" or "shared_memory"
    limiting_factor: str
    #: active warps / maximum warps
    occupancy: float
    #: threads simultaneously resident on the whole device
    resident_threads: int

    @property
    def active_threads_per_sm(self) -> int:
        return self.active_warps_per_sm * 32

    def __bool__(self) -> bool:
        return self.active_blocks_per_sm > 0


class OccupancyCalculator:
    """Compute resident blocks / warps per SM for a kernel configuration."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    # ------------------------------------------------------------------ #
    def warps_per_block(self, threads_per_block: int) -> int:
        """Number of warps needed by one block (rounded up to whole warps)."""
        if threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")
        if threads_per_block > self.device.max_threads_per_block:
            raise ValueError(
                f"threads_per_block ({threads_per_block}) exceeds the device limit "
                f"({self.device.max_threads_per_block})"
            )
        warp = self.device.warp_size
        return -(-threads_per_block // warp)

    def registers_per_block(self, threads_per_block: int, registers_per_thread: int) -> int:
        """Register-file allocation of one block.

        Fermi allocates registers with warp granularity; the allocation is
        rounded up to the hardware granularity (64 registers per warp on
        compute capability 2.x).
        """
        if registers_per_thread < 0:
            raise ValueError("registers_per_thread must be >= 0")
        if registers_per_thread > self.device.max_registers_per_thread:
            raise ValueError(
                f"registers_per_thread ({registers_per_thread}) exceeds the device "
                f"limit ({self.device.max_registers_per_thread})"
            )
        warps = self.warps_per_block(threads_per_block)
        per_warp = registers_per_thread * self.device.warp_size
        granularity = 64
        per_warp = -(-per_warp // granularity) * granularity
        return warps * per_warp

    def shared_memory_allocation(self, requested_bytes: int) -> int:
        """Shared-memory allocation granularity (128-byte banks on Fermi)."""
        if requested_bytes < 0:
            raise ValueError("shared memory request must be >= 0")
        granularity = 128
        return -(-requested_bytes // granularity) * granularity

    # ------------------------------------------------------------------ #
    def compute(
        self,
        threads_per_block: int,
        registers_per_thread: int = 26,
        shared_memory_per_block: int = 0,
        shared_memory_available: int | None = None,
    ) -> OccupancyResult:
        """Occupancy for a kernel launch configuration.

        Parameters
        ----------
        threads_per_block:
            Block size (the paper fixes it to 256).
        registers_per_thread:
            Register footprint of the kernel (26 in the paper).
        shared_memory_per_block:
            Static + dynamic shared memory required by each block, in bytes.
        shared_memory_available:
            Shared memory per SM under the selected Fermi cache
            configuration; defaults to the device's default split.
        """
        device = self.device
        if shared_memory_available is None:
            shared_memory_available = device.default_shared_memory_bytes

        warps_per_block = self.warps_per_block(threads_per_block)

        # Limit 1: resident blocks per SM.
        limit_blocks = device.max_blocks_per_multiprocessor

        # Limit 2: resident warps per SM.
        limit_warps = device.max_warps_per_multiprocessor // warps_per_block

        # Limit 3: register file.  A kernel using no registers is not limited
        # by them at all (use an effectively-infinite limit so the reported
        # limiting factor stays meaningful).
        unlimited = 10**9
        regs_per_block = self.registers_per_block(threads_per_block, registers_per_thread)
        if regs_per_block == 0:
            limit_registers = unlimited
        else:
            limit_registers = device.registers_per_multiprocessor // regs_per_block

        # Limit 4: shared memory.
        smem_per_block = self.shared_memory_allocation(shared_memory_per_block)
        if smem_per_block == 0:
            limit_shared = unlimited
        elif smem_per_block > shared_memory_available:
            limit_shared = 0
        else:
            limit_shared = shared_memory_available // smem_per_block

        limits = {
            "blocks": limit_blocks,
            "warps": limit_warps,
            "registers": limit_registers,
            "shared_memory": limit_shared,
        }
        active_blocks = min(limits.values())
        # deterministic tie-break: report the scarcest resource in a fixed order
        resource_order = ("shared_memory", "registers", "warps", "blocks")
        limiting = min(limits, key=lambda k: (limits[k], resource_order.index(k)))

        active_warps = active_blocks * warps_per_block
        max_warps = device.max_warps_per_multiprocessor
        occupancy = active_warps / max_warps if max_warps else 0.0
        resident_threads = active_blocks * threads_per_block * device.n_multiprocessors
        return OccupancyResult(
            threads_per_block=threads_per_block,
            registers_per_thread=registers_per_thread,
            shared_memory_per_block=smem_per_block,
            active_blocks_per_sm=active_blocks,
            active_warps_per_sm=active_warps,
            limiting_factor=limiting,
            occupancy=occupancy,
            resident_threads=resident_threads,
        )

    def best_block_size(
        self,
        registers_per_thread: int = 26,
        shared_memory_per_block: int = 0,
        candidates: tuple[int, ...] = (64, 128, 192, 256, 384, 512, 768, 1024),
        shared_memory_available: int | None = None,
    ) -> tuple[int, OccupancyResult]:
        """Block size (from ``candidates``) maximising occupancy.

        Ties are resolved in favour of the smaller block size, which gives
        the scheduler more freedom — the same heuristic the CUDA occupancy
        calculator spreadsheet applies.
        """
        best: tuple[int, OccupancyResult] | None = None
        for size in candidates:
            if size > self.device.max_threads_per_block:
                continue
            result = self.compute(
                size,
                registers_per_thread=registers_per_thread,
                shared_memory_per_block=shared_memory_per_block,
                shared_memory_available=shared_memory_available,
            )
            if best is None or result.occupancy > best[1].occupancy:
                best = (size, result)
        if best is None:
            raise ValueError("no candidate block size fits the device")
        return best
