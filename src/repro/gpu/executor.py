"""Functional GPU executor.

:class:`GpuExecutor` plays the role of the CUDA runtime in this
reproduction:

* it "uploads" the instance-level data structures once
  (:class:`DeviceArrays`), checking that the chosen placement fits the
  simulated device;
* it evaluates pools of sub-problems with the vectorised kernel
  (:func:`repro.flowshop.bounds.lower_bound_batch`), so the *values* it
  returns are bit-identical to the scalar CPU bound — pruning decisions, and
  therefore the explored tree, cannot diverge between the CPU and "GPU"
  paths;
* it attaches both the *measured* host wall-clock time of the vectorised
  evaluation and the *simulated* device timing from
  :class:`~repro.gpu.simulator.GpuSimulator`, which is what the experiment
  harness uses to reproduce the paper's speed-up tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.flowshop.bounds import LowerBoundData, get_batch_kernel
from repro.gpu.device import DeviceSpec, TESLA_C2050
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.placement import DataPlacement
from repro.gpu.simulator import GpuSimulator, KernelCostModel, KernelTiming

__all__ = ["DeviceArrays", "ExecutionResult", "GpuExecutor"]


@dataclass(frozen=True)
class DeviceArrays:
    """The instance matrices as resident on the (simulated) device."""

    placement: DataPlacement
    bytes_by_structure: dict[str, int]
    total_bytes: int
    shared_bytes_per_block: int
    upload_time_s: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "bytes_by_structure", dict(self.bytes_by_structure))


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of evaluating one pool on the executor."""

    #: lower bound of every sub-problem of the pool, in pool order
    bounds: np.ndarray
    #: simulated device-side timing (kernel + transfers + host overhead)
    simulated: KernelTiming
    #: measured wall-clock time of the vectorised host evaluation, seconds
    measured_wall_s: float

    @property
    def pool_size(self) -> int:
        return int(self.bounds.shape[0])


class GpuExecutor:
    """Evaluate pools of sub-problems on the simulated device.

    Parameters
    ----------
    data:
        Precomputed lower-bound structures of the instance being solved.
    device:
        Simulated device specification (default: Tesla C2050).
    placement:
        Data placement; defaults to the paper's recommendation for the
        instance size (``PTM`` + ``JM`` in shared memory when they fit).
    cost_model:
        Calibration constants of the timing model.
    threads_per_block:
        CUDA block size (the paper fixes 256).
    kernel:
        Batched kernel revision (``"v1"`` or ``"v2"``); see
        :func:`repro.flowshop.bounds.get_batch_kernel`.  The returned bounds
        are bit-identical either way.
    """

    def __init__(
        self,
        data: LowerBoundData,
        device: DeviceSpec = TESLA_C2050,
        placement: DataPlacement | None = None,
        cost_model: KernelCostModel | None = None,
        threads_per_block: int = 256,
        include_one_machine: bool = False,
        kernel: str = "v2",
    ):
        if threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")
        self.data = data
        self.kernel = kernel
        self._batch_kernel = get_batch_kernel(kernel)
        self.device = device
        complexity = data.complexity
        if placement is None:
            placement = DataPlacement.recommended(complexity, device)
        self.placement = placement
        self.cost_model = cost_model if cost_model is not None else KernelCostModel()
        self.threads_per_block = int(threads_per_block)
        self.include_one_machine = bool(include_one_machine)
        self.simulator = GpuSimulator(
            device=device, placement=placement, cost_model=self.cost_model
        )
        self._device_arrays: DeviceArrays | None = None
        #: cumulative counters, handy for end-of-run statistics
        self.pools_evaluated = 0
        self.nodes_evaluated = 0
        self.simulated_time_s = 0.0
        self.measured_time_s = 0.0

    # ------------------------------------------------------------------ #
    def upload(self) -> DeviceArrays:
        """"Copy" the instance matrices to the device (idempotent)."""
        if self._device_arrays is not None:
            return self._device_arrays
        complexity = self.data.complexity
        hierarchy = MemoryHierarchy(self.device, self.placement.cache_config)
        self.placement.validate(complexity, hierarchy)
        footprints = self.placement.structure_bytes(complexity)
        total = int(sum(footprints.values()))
        transfer = self.simulator._transfer_model()
        upload_s = transfer.instance_upload(total)
        self._device_arrays = DeviceArrays(
            placement=self.placement,
            bytes_by_structure=footprints,
            total_bytes=total,
            shared_bytes_per_block=self.placement.shared_bytes_per_block(complexity),
            upload_time_s=upload_s,
        )
        return self._device_arrays

    @property
    def device_arrays(self) -> DeviceArrays:
        """The uploaded matrices (uploading lazily on first use)."""
        return self.upload()

    # ------------------------------------------------------------------ #
    def occupancy(self):
        """Occupancy of the bounding kernel for this instance/placement."""
        return self.simulator.occupancy(self.data.complexity, self.threads_per_block)

    def evaluate(
        self,
        scheduled_mask: np.ndarray,
        release: np.ndarray,
        n_remaining: int | None = None,
    ) -> ExecutionResult:
        """Evaluate one pool of sub-problems.

        Parameters
        ----------
        scheduled_mask:
            ``(B, n_jobs)`` boolean matrix of already-scheduled jobs.
        release:
            ``(B, n_machines)`` matrix of per-machine release times.
        n_remaining:
            Average number of unscheduled jobs of the pool; used only by the
            timing model (defaults to the actual pool average).

        Returns
        -------
        ExecutionResult
            Lower bounds (exact, bit-identical to the scalar kernel) plus
            simulated and measured timings.
        """
        self.upload()
        scheduled_mask = np.asarray(scheduled_mask, dtype=bool)
        release = np.asarray(release, dtype=np.int64)
        pool_size = int(scheduled_mask.shape[0])
        if n_remaining is None and pool_size:
            n_remaining = int(round(self.data.n_jobs - scheduled_mask.sum(axis=1).mean()))

        start = time.perf_counter()
        bounds = self._batch_kernel(
            self.data,
            scheduled_mask,
            release,
            include_one_machine=self.include_one_machine,
        )
        wall = time.perf_counter() - start

        timing = self.simulator.evaluate_pool(
            self.data.complexity,
            pool_size,
            threads_per_block=self.threads_per_block,
            n_remaining=n_remaining,
        )
        self.pools_evaluated += 1
        self.nodes_evaluated += pool_size
        self.simulated_time_s += timing.total_s
        self.measured_time_s += wall
        return ExecutionResult(bounds=bounds, simulated=timing, measured_wall_s=wall)

    def evaluate_block(self, block) -> ExecutionResult:
        """Evaluate a :class:`~repro.bb.frontier.NodeBlock` pool.

        The block's ``(scheduled_mask, release)`` columns are exactly the
        device buffers :meth:`evaluate` consumes, so this is a zero-copy
        hand-off — the host-side "pack the pool" step of the paper's
        Figure 3 disappears.  This is also the block layout's explicit
        int32↔int64 boundary: :meth:`evaluate` widens the int32 ``release``
        column to the kernels' internal int64, and the int64 bounds are
        cast back through the in-place write into the block's int32
        ``lower_bound`` column.
        """
        result = self.evaluate(block.scheduled_mask, block.release)
        block.lower_bound[:] = result.bounds
        return result

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float | int]:
        """Cumulative executor statistics."""
        return {
            "pools_evaluated": self.pools_evaluated,
            "nodes_evaluated": self.nodes_evaluated,
            "simulated_time_s": self.simulated_time_s,
            "measured_time_s": self.measured_time_s,
            "placement": self.placement.name or "custom",
            "threads_per_block": self.threads_per_block,
            "kernel": self.kernel,
        }
