"""Analytical timing model of the GPU bounding kernel.

The reproduction has no CUDA hardware, so the *performance* side of the
paper (Tables II/III, Figures 4/5) is driven by this model.  It is kept
deliberately simple — a handful of architectural mechanisms, each of which
maps to a sentence of the paper's own analysis:

1. **Work per thread.**  One thread evaluates one lower bound: it walks
   ``m(m-1)/2`` machine couples times ``n`` Johnson positions, performing a
   few arithmetic instructions and the Table I memory accesses per step
   (complexity ``O(m^2 n)``, the paper's granularity argument).
2. **Memory placement.**  Every access is charged an *amortised* cost that
   depends on the memory space the structure is mapped to: shared memory is
   a couple of cycles, global memory costs more, and its cost depends on
   how much of the working set fits in the L1 slice of the Fermi on-chip
   memory (this is what makes the shared-memory placement pay off more for
   the large instances, exactly as in Figure 4).
3. **Occupancy.**  The active-warp count from the occupancy calculator
   determines how well the remaining global-memory latency is hidden.
4. **Device utilisation.**  Blocks are distributed over the SMs; small
   pools (few blocks) leave SMs idle or imbalanced — the paper's "the
   number of blocks (16) ... is not sufficient" observation — which the
   model captures by timing the busiest SM.
5. **Transfers and host overhead.**  Each pool pays the PCIe round trip of
   :class:`~repro.gpu.transfer.TransferModel` plus a per-node host-side cost
   (pool selection / encoding / elimination), which is what erodes the
   speed-up of small instances at very large pool sizes.

All constants live in :class:`KernelCostModel` and are documented as
calibration constants; EXPERIMENTS.md reports the paper-vs-model deltas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import DeviceSpec, TESLA_C2050
from repro.gpu.memory import MemoryHierarchy, MemorySpace
from repro.gpu.occupancy import OccupancyCalculator, OccupancyResult
from repro.gpu.placement import DataPlacement, STRUCTURE_NAMES
from repro.gpu.transfer import TransferModel, TransferTiming

__all__ = ["KernelCostModel", "KernelTiming", "GpuSimulator"]


@dataclass(frozen=True)
class KernelTiming:
    """Break-down of the simulated evaluation of one pool (seconds)."""

    pool_size: int
    kernel_s: float
    transfer_s: float
    host_overhead_s: float
    launch_overhead_s: float
    occupancy: OccupancyResult
    per_thread_cycles: float

    @property
    def total_s(self) -> float:
        return self.kernel_s + self.transfer_s + self.host_overhead_s + self.launch_overhead_s

    @property
    def per_node_s(self) -> float:
        return self.total_s / self.pool_size if self.pool_size else 0.0


@dataclass(frozen=True)
class KernelCostModel:
    """Calibration constants of the kernel cost model.

    The default values were chosen once, by hand, so that the modelled
    speed-ups land in the ranges reported by the paper for the Tesla
    C2050 / Xeon E5520 pair; they are *not* fitted per experiment.
    """

    #: arithmetic cycles per (couple, job) iteration of the kernel
    cycles_per_iteration: float = 6.0
    #: cycles charged per access to shared memory / registers
    shared_access_cycles: float = 2.5
    #: cycles charged per access to an L1-resident global location
    l1_hit_cycles: float = 5.0
    #: raw DRAM latency (cycles); warp-broadcast + full occupancy reduce the
    #: *exposed* cost to ``dram_latency_cycles / warp_size`` at 32 active warps
    dram_latency_cycles: float = 320.0
    #: reference active-warp count at which the exposed DRAM cost is minimal
    full_hiding_warps: float = 32.0
    #: fraction of global accesses served by L2 even when the working set
    #: overflows L1 (the matrices are broadcast across warps, so L2 catches them)
    l2_backstop_hit_fraction: float = 0.6
    #: maximal L1 hit rate (cold misses, tags, per-node data competing)
    max_l1_hit_rate: float = 0.95
    #: host-side fixed cost per node (selection, encoding, elimination), seconds
    host_cost_per_node_s: float = 0.03e-6
    #: additional per-node host cost when the pending pool becomes very large
    #: (the host-side pool spills out of the CPU caches); saturating term
    host_pool_pressure_s: float = 0.09e-6
    #: pool size at which half of the pool-pressure penalty applies
    pool_pressure_half_size: int = 32768
    #: registers used per thread by the bounding kernel (paper: 26)
    registers_per_thread: int = 26

    def with_overrides(self, **kwargs: float) -> "KernelCostModel":
        """Copy with some constants replaced (used by ablation benchmarks)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class GpuSimulator:
    """Simulated execution of the bounding kernel on a device.

    Parameters
    ----------
    device:
        The simulated GPU (defaults to the paper's Tesla C2050).
    placement:
        Data-structure placement (defaults to everything in global memory).
    cost_model:
        Calibration constants.
    transfer:
        Host<->device transfer model; built from the device when omitted.
    """

    device: DeviceSpec = TESLA_C2050
    placement: DataPlacement = field(default_factory=DataPlacement.all_global)
    cost_model: KernelCostModel = field(default_factory=KernelCostModel)
    transfer: TransferModel | None = None

    def _transfer_model(self) -> TransferModel:
        return self.transfer if self.transfer is not None else TransferModel(self.device)

    def hierarchy(self) -> MemoryHierarchy:
        return MemoryHierarchy(self.device, self.placement.cache_config)

    # ------------------------------------------------------------------ #
    # Occupancy of the kernel under this placement
    # ------------------------------------------------------------------ #
    def occupancy(
        self, complexity: DataStructureComplexity, threads_per_block: int = 256
    ) -> OccupancyResult:
        """Occupancy of the bounding kernel for an instance size."""
        hierarchy = self.hierarchy()
        shared_per_block = self.placement.shared_bytes_per_block(complexity)
        calculator = OccupancyCalculator(self.device)
        return calculator.compute(
            threads_per_block=threads_per_block,
            registers_per_thread=self.cost_model.registers_per_thread,
            shared_memory_per_block=shared_per_block,
            shared_memory_available=hierarchy.shared_memory_per_sm,
        )

    # ------------------------------------------------------------------ #
    # Per-thread cost
    # ------------------------------------------------------------------ #
    def _global_hit_rate(self, complexity: DataStructureComplexity) -> float:
        """L1 hit rate of the global-memory resident structures.

        The hot working set is whatever part of ``PTM``/``LM``/``JM`` is not
        in shared memory; if it fits in the L1 slice the hit rate saturates
        at :attr:`KernelCostModel.max_l1_hit_rate`, otherwise it degrades
        proportionally to the capacity ratio.
        """
        hierarchy = self.hierarchy()
        footprints = self.placement.structure_bytes(complexity)
        working_set = sum(
            footprints[name]
            for name in ("PTM", "LM", "JM")
            if self.placement.space_of(name) is MemorySpace.GLOBAL
        )
        l1 = hierarchy.l1_cache_per_sm
        if working_set <= 0:
            return self.cost_model.max_l1_hit_rate
        backstop = self.cost_model.l2_backstop_hit_fraction
        ratio = backstop + (1.0 - backstop) * (l1 / working_set)
        return float(min(self.cost_model.max_l1_hit_rate, max(0.05, ratio)))

    def _access_cost_cycles(
        self,
        complexity: DataStructureComplexity,
        occupancy: OccupancyResult,
    ) -> dict[str, float]:
        """Amortised cycles per access for each structure under the placement."""
        cm = self.cost_model
        hit = self._global_hit_rate(complexity)
        # The matrices are read at the same address by every thread of a warp
        # (they are instance data, not node data), so a miss is paid once per
        # warp; with fewer active warps there is less other work to overlap
        # with the stall, hence the sqrt penalty on low occupancy.
        warps = max(1.0, float(occupancy.active_warps_per_sm))
        exposed = cm.dram_latency_cycles / self.device.warp_size
        miss_cost = exposed * math.sqrt(cm.full_hiding_warps / warps)
        global_cost = hit * cm.l1_hit_cycles + (1.0 - hit) * miss_cost
        costs: dict[str, float] = {}
        for name in STRUCTURE_NAMES:
            space = self.placement.space_of(name)
            if space is MemorySpace.SHARED:
                costs[name] = cm.shared_access_cycles
            elif space in (MemorySpace.REGISTERS, MemorySpace.CONSTANT):
                costs[name] = cm.shared_access_cycles
            else:
                costs[name] = global_cost
        return costs

    def per_thread_cycles(
        self,
        complexity: DataStructureComplexity,
        occupancy: OccupancyResult,
        n_remaining: int | None = None,
    ) -> float:
        """Effective cycles one thread spends evaluating one lower bound."""
        cm = self.cost_model
        n = complexity.n
        n_prime = n if n_remaining is None else int(n_remaining)
        inner_iterations = complexity.n_couples * n
        compute = cm.cycles_per_iteration * inner_iterations
        accesses = complexity.accesses(n_prime)
        costs = self._access_cost_cycles(complexity, occupancy)
        memory = sum(accesses[name] * costs[name] for name in STRUCTURE_NAMES)
        return float(compute + memory)

    # ------------------------------------------------------------------ #
    # Pool-level timing
    # ------------------------------------------------------------------ #
    def kernel_time_s(
        self,
        complexity: DataStructureComplexity,
        pool_size: int,
        threads_per_block: int = 256,
        n_remaining: int | None = None,
    ) -> tuple[float, OccupancyResult, float]:
        """Kernel execution time for one pool (seconds).

        Returns ``(seconds, occupancy, per_thread_cycles)``.  The model
        times the *busiest* SM: blocks are distributed round-robin over the
        multiprocessors and executed in cohorts of ``active_blocks_per_sm``
        concurrent blocks; each cohort's duration is the maximum of its
        compute-throughput bound and the latency floor of a single thread.
        """
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        occupancy = self.occupancy(complexity, threads_per_block)
        cycles = self.per_thread_cycles(complexity, occupancy, n_remaining)
        if pool_size == 0:
            return 0.0, occupancy, cycles
        if occupancy.active_blocks_per_sm == 0:
            raise ValueError(
                "kernel cannot launch: the shared-memory placement does not fit "
                "(occupancy is zero)"
            )

        device = self.device
        blocks = math.ceil(pool_size / threads_per_block)
        blocks_on_busiest_sm = math.ceil(blocks / device.n_multiprocessors)
        concurrent = occupancy.active_blocks_per_sm

        total_cycles = 0.0
        remaining = blocks_on_busiest_sm
        while remaining > 0:
            cohort_blocks = min(concurrent, remaining)
            remaining -= cohort_blocks
            resident_threads = cohort_blocks * threads_per_block
            throughput_bound = resident_threads * cycles / device.cores_per_multiprocessor
            latency_floor = cycles
            total_cycles += max(throughput_bound, latency_floor)
        return total_cycles / device.clock_hz, occupancy, cycles

    def evaluate_pool(
        self,
        complexity: DataStructureComplexity,
        pool_size: int,
        threads_per_block: int = 256,
        n_remaining: int | None = None,
    ) -> KernelTiming:
        """Full simulated cost of evaluating one pool of sub-problems."""
        kernel_s, occupancy, cycles = self.kernel_time_s(
            complexity, pool_size, threads_per_block, n_remaining
        )
        transfer: TransferTiming = self._transfer_model().round_trip(
            pool_size, n_jobs=complexity.n, n_machines=complexity.m
        )
        cm = self.cost_model
        pressure = pool_size / (pool_size + cm.pool_pressure_half_size) if pool_size else 0.0
        host = pool_size * (cm.host_cost_per_node_s + cm.host_pool_pressure_s * pressure)
        return KernelTiming(
            pool_size=pool_size,
            kernel_s=kernel_s,
            transfer_s=transfer.host_to_device_s + transfer.device_to_host_s,
            host_overhead_s=host,
            launch_overhead_s=transfer.fixed_overhead_s,
            occupancy=occupancy,
            per_thread_cycles=cycles,
        )
