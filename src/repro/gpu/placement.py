"""Mapping of the lower-bound data structures onto GPU memory spaces.

This is the heart of the paper's "data access optimisation": given the sizes
and access frequencies of ``PTM``, ``LM``, ``JM``, ``RM``, ``QM`` and ``MM``
(Table I) and the capacities/latencies of the GPU memories, choose where
each structure lives.

The paper's conclusion — reproduced by :meth:`DataPlacement.recommended` —
is to place ``JM`` and ``PTM`` in shared memory whenever they fit together
(``JM`` has the same access frequency as ``LM`` but half the size, and
``PTM`` has the highest access count of all), keep everything else in global
memory, and configure the Fermi on-chip split accordingly (48 KB shared when
shared memory is used, 48 KB L1 otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.memory import FermiCacheConfig, MemoryHierarchy, MemorySpace
from repro.gpu.device import DeviceSpec

__all__ = ["PlacementError", "DataPlacement", "STRUCTURE_NAMES", "DEFAULT_ELEMENT_BYTES"]

#: The six structures, in the order used by Table I.
STRUCTURE_NAMES: tuple[str, ...] = ("PTM", "LM", "JM", "RM", "QM", "MM")

#: Bytes per element of each structure in the device buffers.
#:
#: The paper's reported footprints (``JM`` and ``LM`` ~38 KB each, ``PTM``
#: ~4 KB for the 200x20 instances) correspond to byte-packed matrices:
#: processing times are at most 99 and job indices at most 255, so a single
#: byte suffices.  ``RM``/``QM``/``MM`` are tiny either way.
DEFAULT_ELEMENT_BYTES: Mapping[str, int] = {
    "PTM": 1,
    "LM": 1,
    "JM": 1,
    "RM": 4,
    "QM": 4,
    "MM": 2,
}


class PlacementError(ValueError):
    """Raised when a placement does not fit in the targeted memory spaces."""


@dataclass(frozen=True)
class DataPlacement:
    """Assignment of every data structure to a memory space.

    Parameters
    ----------
    assignment:
        Mapping from structure name to :class:`MemorySpace`.  Structures not
        present default to global memory.
    cache_config:
        The Fermi shared/L1 split to use with this placement.
    element_bytes:
        Bytes per element of each structure (defaults to
        :data:`DEFAULT_ELEMENT_BYTES`).
    """

    assignment: Mapping[str, MemorySpace] = field(default_factory=dict)
    cache_config: FermiCacheConfig = FermiCacheConfig.PREFER_L1
    element_bytes: Mapping[str, int] = field(default_factory=lambda: dict(DEFAULT_ELEMENT_BYTES))
    name: str = ""

    def __post_init__(self) -> None:
        normalized: dict[str, MemorySpace] = {}
        for key, space in self.assignment.items():
            if key not in STRUCTURE_NAMES:
                raise PlacementError(f"unknown data structure {key!r}")
            normalized[key] = MemorySpace(space)
        object.__setattr__(self, "assignment", normalized)
        bytes_map = dict(DEFAULT_ELEMENT_BYTES)
        bytes_map.update({k: int(v) for k, v in self.element_bytes.items()})
        for key, value in bytes_map.items():
            if key not in STRUCTURE_NAMES:
                raise PlacementError(f"unknown data structure {key!r} in element_bytes")
            if value < 1:
                raise PlacementError("element sizes must be at least one byte")
        object.__setattr__(self, "element_bytes", bytes_map)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def all_global(cls) -> "DataPlacement":
        """Every structure in global memory; 48 KB of L1 (the Table II scenario)."""
        return cls(assignment={}, cache_config=FermiCacheConfig.PREFER_L1, name="all-global")

    @classmethod
    def shared_ptm_jm(cls) -> "DataPlacement":
        """``PTM`` and ``JM`` in shared memory (the Table III scenario)."""
        return cls(
            assignment={"PTM": MemorySpace.SHARED, "JM": MemorySpace.SHARED},
            cache_config=FermiCacheConfig.PREFER_SHARED,
            name="shared-PTM-JM",
        )

    @classmethod
    def shared_structures(cls, names: Iterable[str]) -> "DataPlacement":
        """Arbitrary subset of structures in shared memory (for ablations)."""
        names = tuple(names)
        assignment = {name: MemorySpace.SHARED for name in names}
        return cls(
            assignment=assignment,
            cache_config=FermiCacheConfig.PREFER_SHARED,
            name="shared-" + "-".join(names) if names else "all-global",
        )

    # ------------------------------------------------------------------ #
    def space_of(self, structure: str) -> MemorySpace:
        """Memory space hosting ``structure`` (global memory by default)."""
        if structure not in STRUCTURE_NAMES:
            raise PlacementError(f"unknown data structure {structure!r}")
        return self.assignment.get(structure, MemorySpace.GLOBAL)

    def structure_bytes(self, complexity: DataStructureComplexity) -> dict[str, int]:
        """Footprint in bytes of every structure for a given instance size."""
        sizes = complexity.sizes()
        return {name: sizes[name] * self.element_bytes[name] for name in STRUCTURE_NAMES}

    def shared_bytes_per_block(self, complexity: DataStructureComplexity) -> int:
        """Shared memory each block must allocate under this placement.

        Every thread block keeps its own copy of the shared-memory resident
        structures (that is how the paper's kernel works: the block
        cooperatively stages the matrices into shared memory before the
        bounding loop), so the per-block footprint is simply the sum of the
        footprints of the structures assigned to shared memory.
        """
        footprints = self.structure_bytes(complexity)
        return sum(
            footprints[name]
            for name in STRUCTURE_NAMES
            if self.space_of(name) is MemorySpace.SHARED
        )

    def validate(
        self, complexity: DataStructureComplexity, hierarchy: MemoryHierarchy
    ) -> None:
        """Raise :class:`PlacementError` if the placement cannot be realised."""
        shared_needed = self.shared_bytes_per_block(complexity)
        available = hierarchy.shared_memory_per_sm
        if shared_needed > available:
            raise PlacementError(
                f"placement {self.name or self.assignment} needs {shared_needed} B of shared "
                f"memory per block but only {available} B are available per SM"
            )
        total_global = sum(
            footprint
            for name, footprint in self.structure_bytes(complexity).items()
            if self.space_of(name) is MemorySpace.GLOBAL
        )
        capacity = hierarchy.device.global_memory_bytes
        if total_global > capacity:
            raise PlacementError(
                f"global-memory footprint {total_global} B exceeds device capacity {capacity} B"
            )

    def fits(self, complexity: DataStructureComplexity, hierarchy: MemoryHierarchy) -> bool:
        """``True`` when :meth:`validate` would not raise."""
        try:
            self.validate(complexity, hierarchy)
        except PlacementError:
            return False
        return True

    # ------------------------------------------------------------------ #
    @classmethod
    def recommended(
        cls,
        complexity: DataStructureComplexity,
        device: DeviceSpec,
    ) -> "DataPlacement":
        """The paper's recommendation, degraded gracefully when space is tight.

        1. Prefer ``JM`` + ``PTM`` in shared memory (Table III scenario).
        2. If they do not fit together, keep only ``JM`` (same access count
           as ``LM`` but half the size, and much larger than ``PTM``).
        3. If even ``JM`` alone does not fit, fall back to all-global with a
           large L1.
        """
        shared_capacity = FermiCacheConfig.PREFER_SHARED.shared_bytes()
        shared_capacity = min(shared_capacity, device.onchip_memory_bytes)
        candidates = [
            cls.shared_ptm_jm(),
            cls.shared_structures(["JM"]),
            cls.shared_structures(["PTM"]),
            cls.all_global(),
        ]
        hierarchy_cache: dict[FermiCacheConfig, MemoryHierarchy] = {}
        for candidate in candidates:
            hierarchy = hierarchy_cache.setdefault(
                candidate.cache_config, MemoryHierarchy(device, candidate.cache_config)
            )
            if candidate.fits(complexity, hierarchy):
                return candidate
        return cls.all_global()

    def describe(self, complexity: DataStructureComplexity) -> list[dict[str, object]]:
        """Per-structure summary rows (name, space, bytes, accesses)."""
        footprints = self.structure_bytes(complexity)
        accesses = complexity.accesses()
        return [
            {
                "structure": name,
                "space": self.space_of(name).value,
                "bytes": footprints[name],
                "accesses_per_lb": accesses[name],
            }
            for name in STRUCTURE_NAMES
        ]
