"""Device and CPU specifications.

The specifications collect the architectural parameters the paper's analysis
relies on: number of streaming multiprocessors (SMs), CUDA cores per SM,
clock speed, warp size, register file, shared-memory size, global-memory
size, and the theoretical double-precision peak used for the "equal GFLOPS"
comparison of Section V.

Presets are provided for the hardware of the paper's testbed:

* :data:`TESLA_C2050` — the GPU used in Section IV (448 cores = 14 SMs x 32,
  1.15 GHz, 2.8 GB usable global memory, configurable 48/16 KB shared/L1,
  warp size 32, ~515 GFLOPS double precision).
* :data:`XEON_E5520` — the host CPU of the GPU experiments.
* :data:`CORE_I7_970` — the 6-core CPU of the multi-threaded baseline
  (76.8 GFLOPS per the paper, i.e. 12.8 GFLOPS per core).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "TESLA_C2050",
    "TESLA_C1060",
    "GTX_480",
    "XEON_E5520",
    "CORE_I7_970",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a CUDA-capable device.

    All limits are per streaming multiprocessor (SM) unless stated
    otherwise.  Defaults correspond to the Fermi generation (compute
    capability 2.0), the architecture of the paper's Tesla C2050.
    """

    name: str
    n_multiprocessors: int
    cores_per_multiprocessor: int
    clock_ghz: float
    global_memory_bytes: int
    #: total per-SM on-chip storage that Fermi splits between shared memory and L1
    onchip_memory_bytes: int = 64 * KIB
    #: default shared-memory share of the on-chip storage (48 KB on Fermi)
    default_shared_memory_bytes: int = 48 * KIB
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_multiprocessor: int = 1536
    max_blocks_per_multiprocessor: int = 8
    max_warps_per_multiprocessor: int = 48
    registers_per_multiprocessor: int = 32768
    max_registers_per_thread: int = 63
    #: theoretical double-precision peak in GFLOPS (Section V comparison)
    peak_gflops_double: float = 0.0
    #: theoretical single-precision peak in GFLOPS
    peak_gflops_single: float = 0.0
    #: global-memory bandwidth in GB/s
    memory_bandwidth_gbs: float = 144.0
    #: PCIe effective host<->device bandwidth in GB/s
    pcie_bandwidth_gbs: float = 5.0
    #: fixed overhead of one kernel launch, in microseconds
    kernel_launch_overhead_us: float = 7.0

    def __post_init__(self) -> None:
        if self.n_multiprocessors < 1:
            raise ValueError("a device needs at least one multiprocessor")
        if self.cores_per_multiprocessor < 1:
            raise ValueError("a multiprocessor needs at least one core")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.warp_size < 1:
            raise ValueError("warp_size must be positive")
        if self.default_shared_memory_bytes > self.onchip_memory_bytes:
            raise ValueError("shared memory cannot exceed the on-chip storage")

    # ------------------------------------------------------------------ #
    @property
    def total_cores(self) -> int:
        """Total number of CUDA cores."""
        return self.n_multiprocessors * self.cores_per_multiprocessor

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def max_resident_threads(self) -> int:
        """Upper limit of threads simultaneously resident on the device."""
        return self.n_multiprocessors * self.max_threads_per_multiprocessor

    def recommended_min_blocks(self) -> int:
        """The paper's rule of thumb: at least twice the number of SMs."""
        return 2 * self.n_multiprocessors

    def with_shared_memory(self, shared_bytes: int) -> "DeviceSpec":
        """Return a copy with a different shared/L1 split (Fermi cache config)."""
        if shared_bytes > self.onchip_memory_bytes:
            raise ValueError(
                f"shared memory ({shared_bytes}) exceeds on-chip storage "
                f"({self.onchip_memory_bytes})"
            )
        return replace(self, default_shared_memory_bytes=shared_bytes)

    @property
    def l1_cache_bytes(self) -> int:
        """L1 size implied by the current shared-memory split."""
        return self.onchip_memory_bytes - self.default_shared_memory_bytes


@dataclass(frozen=True)
class CpuSpec:
    """Description of a CPU used as host or as the multi-threaded baseline."""

    name: str
    n_cores: int
    n_threads: int
    clock_ghz: float
    #: theoretical double-precision peak of the whole chip, in GFLOPS
    peak_gflops_double: float
    #: per-core double-precision peak, in GFLOPS
    peak_gflops_per_core: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.n_cores < 1 or self.n_threads < self.n_cores:
            raise ValueError("invalid core/thread counts")
        if self.peak_gflops_per_core == 0.0:
            object.__setattr__(self, "peak_gflops_per_core", self.peak_gflops_double / self.n_cores)

    def gflops_for_cores(self, n_cores: int) -> float:
        """Theoretical peak of ``n_cores`` cores (Section V scaling)."""
        if n_cores < 0:
            raise ValueError("n_cores must be non-negative")
        return self.peak_gflops_per_core * n_cores

    def cores_for_gflops(self, gflops: float) -> float:
        """Number of cores needed to reach ``gflops`` (may be fractional)."""
        if gflops < 0:
            raise ValueError("gflops must be non-negative")
        return gflops / self.peak_gflops_per_core


#: The GPU of the paper's experiments (Section IV).
TESLA_C2050 = DeviceSpec(
    name="Nvidia Tesla C2050",
    n_multiprocessors=14,
    cores_per_multiprocessor=32,
    clock_ghz=1.15,
    global_memory_bytes=int(2.8 * GIB),
    onchip_memory_bytes=64 * KIB,
    default_shared_memory_bytes=48 * KIB,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_multiprocessor=1536,
    max_blocks_per_multiprocessor=8,
    max_warps_per_multiprocessor=48,
    registers_per_multiprocessor=32768,
    max_registers_per_thread=63,
    peak_gflops_double=515.0,
    peak_gflops_single=1030.0,
    memory_bandwidth_gbs=144.0,
    pcie_bandwidth_gbs=5.0,
)

#: Previous-generation Tesla (GT200), used by some ablations.
TESLA_C1060 = DeviceSpec(
    name="Nvidia Tesla C1060",
    n_multiprocessors=30,
    cores_per_multiprocessor=8,
    clock_ghz=1.296,
    global_memory_bytes=4 * GIB,
    onchip_memory_bytes=16 * KIB,
    default_shared_memory_bytes=16 * KIB,
    warp_size=32,
    max_threads_per_block=512,
    max_threads_per_multiprocessor=1024,
    max_blocks_per_multiprocessor=8,
    max_warps_per_multiprocessor=32,
    registers_per_multiprocessor=16384,
    max_registers_per_thread=124,
    peak_gflops_double=78.0,
    peak_gflops_single=933.0,
    memory_bandwidth_gbs=102.0,
    pcie_bandwidth_gbs=5.0,
)

#: Consumer Fermi card, used by some ablations.
GTX_480 = DeviceSpec(
    name="Nvidia GeForce GTX 480",
    n_multiprocessors=15,
    cores_per_multiprocessor=32,
    clock_ghz=1.401,
    global_memory_bytes=int(1.5 * GIB),
    onchip_memory_bytes=64 * KIB,
    default_shared_memory_bytes=48 * KIB,
    peak_gflops_double=168.0,
    peak_gflops_single=1345.0,
    memory_bandwidth_gbs=177.0,
)

#: Host CPU of the GPU experiments (Section IV).
XEON_E5520 = CpuSpec(
    name="Intel Xeon E5520",
    n_cores=8,  # two quad-core chips
    n_threads=16,
    clock_ghz=2.27,
    peak_gflops_double=72.6,  # 8 cores x 2.27 GHz x 4 flops/cycle
)

#: CPU of the multi-threaded baseline (Section V).
CORE_I7_970 = CpuSpec(
    name="Intel Core i7-970",
    n_cores=6,
    n_threads=12,
    clock_ghz=3.20,
    peak_gflops_double=76.8,
    peak_gflops_per_core=76.8 / 6.0,
)
