"""GPU memory hierarchy model.

CUDA exposes several memory spaces with very different sizes and latencies;
the whole point of the paper's data-access optimisation is to choose, for
each of the six lower-bound data structures, the space that minimises the
aggregate ``accesses x latency`` cost subject to the capacity constraints.

This module models those spaces.  Latencies are expressed in clock cycles
and follow the commonly published Fermi figures (shared memory and L1 hits
in the tens of cycles, global memory in the hundreds).  The exact values
are calibration constants of the simulator — what matters for reproducing
the paper's *shape* is their ordering and rough magnitude ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from repro.gpu.device import DeviceSpec, KIB

__all__ = ["MemorySpace", "MemorySpec", "FermiCacheConfig", "MemoryHierarchy"]


class MemorySpace(str, Enum):
    """The CUDA memory spaces relevant to the kernel."""

    GLOBAL = "global"
    SHARED = "shared"
    CONSTANT = "constant"
    TEXTURE = "texture"
    LOCAL = "local"
    REGISTERS = "registers"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MemorySpec:
    """Capacity and latency of one memory space."""

    space: MemorySpace
    #: capacity in bytes; ``None`` means "limited only by global memory"
    capacity_bytes: int | None
    #: access latency in clock cycles (uncached / miss latency for GLOBAL)
    latency_cycles: float
    #: latency when the access hits a cache in front of this space
    cached_latency_cycles: float | None = None
    #: whether the space is shared by all threads of a block (SHARED) or device-wide
    per_block: bool = False

    def effective_latency(self, hit_rate: float = 0.0) -> float:
        """Average latency given a cache hit rate in ``[0, 1]``."""
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError("hit_rate must be in [0, 1]")
        if self.cached_latency_cycles is None or hit_rate == 0.0:
            return self.latency_cycles
        return hit_rate * self.cached_latency_cycles + (1.0 - hit_rate) * self.latency_cycles


class FermiCacheConfig(str, Enum):
    """The two shared-memory / L1 splits of the Fermi architecture.

    The paper uses ``PREFER_SHARED`` (48 KB shared / 16 KB L1) for the
    scenario that stores ``PTM`` and ``JM`` in shared memory, and
    ``PREFER_L1`` (16 KB shared / 48 KB L1) for the all-global scenario.
    """

    PREFER_SHARED = "prefer_shared"
    PREFER_L1 = "prefer_l1"
    EQUAL = "equal"

    def shared_bytes(self) -> int:
        return {"prefer_shared": 48 * KIB, "prefer_l1": 16 * KIB, "equal": 32 * KIB}[self.value]

    def l1_bytes(self) -> int:
        return 64 * KIB - self.shared_bytes()


#: Default Fermi-era latencies (clock cycles).
_DEFAULT_LATENCIES: dict[MemorySpace, tuple[float, float | None]] = {
    MemorySpace.GLOBAL: (400.0, 80.0),     # (DRAM, L1/L2 hit)
    MemorySpace.SHARED: (30.0, None),
    MemorySpace.CONSTANT: (200.0, 8.0),    # broadcast hit is very cheap
    MemorySpace.TEXTURE: (350.0, 100.0),
    MemorySpace.LOCAL: (400.0, 80.0),
    MemorySpace.REGISTERS: (1.0, None),
}


@dataclass(frozen=True)
class MemoryHierarchy:
    """The memory hierarchy of one device under a given cache configuration."""

    device: DeviceSpec
    cache_config: FermiCacheConfig = FermiCacheConfig.PREFER_L1
    latency_overrides: Mapping[MemorySpace, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def shared_memory_per_sm(self) -> int:
        """Shared memory available per SM under the current cache config."""
        return min(self.cache_config.shared_bytes(), self.device.onchip_memory_bytes)

    @property
    def l1_cache_per_sm(self) -> int:
        return self.device.onchip_memory_bytes - self.shared_memory_per_sm

    def spec(self, space: MemorySpace) -> MemorySpec:
        """The :class:`MemorySpec` of ``space`` for this device/config."""
        latency, cached = _DEFAULT_LATENCIES[space]
        if space in self.latency_overrides:
            latency = float(self.latency_overrides[space])
        capacity: int | None
        per_block = False
        if space is MemorySpace.GLOBAL:
            capacity = self.device.global_memory_bytes
        elif space is MemorySpace.SHARED:
            capacity = self.shared_memory_per_sm
            per_block = True
        elif space is MemorySpace.CONSTANT:
            capacity = 64 * KIB
        elif space is MemorySpace.TEXTURE:
            capacity = self.device.global_memory_bytes
        elif space is MemorySpace.LOCAL:
            capacity = None
        else:  # REGISTERS
            capacity = self.device.registers_per_multiprocessor * 4
        return MemorySpec(
            space=space,
            capacity_bytes=capacity,
            latency_cycles=latency,
            cached_latency_cycles=cached,
            per_block=per_block,
        )

    def global_hit_rate(self) -> float:
        """Heuristic L1 hit rate for global-memory accesses.

        A bigger L1 slice (the ``PREFER_L1`` configuration the paper uses
        when everything lives in global memory) caches the hot matrices
        better.  The rate is a simple saturating function of the L1 size;
        it is one of the simulator's calibration constants.
        """
        l1 = self.l1_cache_per_sm
        return min(0.92, 0.55 + 0.35 * (l1 / (48 * KIB)))

    def access_cycles(self, space: MemorySpace) -> float:
        """Average per-access latency of ``space`` under this configuration."""
        spec = self.spec(space)
        if space is MemorySpace.GLOBAL:
            return spec.effective_latency(self.global_hit_rate())
        if space is MemorySpace.CONSTANT:
            return spec.effective_latency(0.9)
        if space is MemorySpace.TEXTURE:
            return spec.effective_latency(0.7)
        return spec.effective_latency(0.0)

    def describe(self) -> dict[str, dict[str, float | int | None]]:
        """Summary of all spaces (size, latency) — handy for reports/tests."""
        out: dict[str, dict[str, float | int | None]] = {}
        for space in MemorySpace:
            spec = self.spec(space)
            out[space.value] = {
                "capacity_bytes": spec.capacity_bytes,
                "latency_cycles": spec.latency_cycles,
                "effective_latency_cycles": self.access_cycles(space),
            }
        return out
