"""Simulated GPU substrate.

The paper runs its bounding kernel on an Nvidia Tesla C2050 (Fermi).  No
CUDA hardware is available to this reproduction, so this package provides a
*simulated* device with the pieces the paper's performance story depends on:

* :mod:`~repro.gpu.device` — device specifications (multiprocessors, cores,
  clock, memory sizes, warp size, register file) with a Tesla C2050 preset,
  plus CPU specifications for the comparison baselines.
* :mod:`~repro.gpu.memory` — the memory hierarchy (global / shared /
  constant / texture / local / registers) with sizes and access latencies,
  and the Fermi configurable shared-memory/L1 split.
* :mod:`~repro.gpu.occupancy` — a CUDA-style occupancy calculator limited by
  registers, shared memory, warps and blocks per multiprocessor.
* :mod:`~repro.gpu.placement` — mapping of the lower bound's six data
  structures onto memory spaces (the paper's data-access optimisation).
* :mod:`~repro.gpu.transfer` — the PCIe host<->device transfer model.
* :mod:`~repro.gpu.simulator` — an analytical timing model of the bounding
  kernel (compute cycles + memory stalls modulated by occupancy).
* :mod:`~repro.gpu.executor` — the functional executor: evaluates pools of
  sub-problems with the vectorised kernel (bit-identical values to the
  scalar bound) and attaches the simulated timing.
"""

from repro.gpu.device import (
    DeviceSpec,
    CpuSpec,
    TESLA_C2050,
    TESLA_C1060,
    GTX_480,
    XEON_E5520,
    CORE_I7_970,
)
from repro.gpu.memory import (
    MemorySpace,
    MemorySpec,
    FermiCacheConfig,
    MemoryHierarchy,
)
from repro.gpu.occupancy import OccupancyCalculator, OccupancyResult
from repro.gpu.placement import DataPlacement, PlacementError
from repro.gpu.transfer import TransferModel, TransferTiming
from repro.gpu.simulator import KernelCostModel, GpuSimulator, KernelTiming
from repro.gpu.executor import GpuExecutor, ExecutionResult, DeviceArrays

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "TESLA_C2050",
    "TESLA_C1060",
    "GTX_480",
    "XEON_E5520",
    "CORE_I7_970",
    "MemorySpace",
    "MemorySpec",
    "FermiCacheConfig",
    "MemoryHierarchy",
    "OccupancyCalculator",
    "OccupancyResult",
    "DataPlacement",
    "PlacementError",
    "TransferModel",
    "TransferTiming",
    "KernelCostModel",
    "GpuSimulator",
    "KernelTiming",
    "GpuExecutor",
    "ExecutionResult",
    "DeviceArrays",
]
