"""Host <-> device transfer model.

Each Branch-and-Bound iteration ships a pool of sub-problems to the device
and retrieves one lower bound per sub-problem.  The paper encodes a
sub-problem compactly (the permutation prefix / scheduled-job set and the
per-machine release times), so the transferred volume per node is small but
the *per-transfer* fixed cost (driver launch, PCIe transaction setup) is
what makes tiny pools inefficient — this is the "best ratio between lower
bound evaluation time ... and its total communication time" trade-off the
paper discusses when explaining the optimal pool sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec

__all__ = ["TransferTiming", "TransferModel"]


@dataclass(frozen=True)
class TransferTiming:
    """Break-down of one host->device->host round trip (seconds)."""

    host_to_device_s: float
    device_to_host_s: float
    fixed_overhead_s: float

    @property
    def total_s(self) -> float:
        return self.host_to_device_s + self.device_to_host_s + self.fixed_overhead_s


@dataclass(frozen=True)
class TransferModel:
    """Simple latency + bandwidth PCIe model.

    Parameters
    ----------
    device:
        The device whose effective PCIe bandwidth is used.
    latency_us:
        Fixed cost per transfer direction (driver call + DMA setup).
    node_payload_bytes:
        Bytes shipped *per sub-problem* on the way in.  A sub-problem is
        encoded as the scheduled-job bitmap plus the ``m`` release times
        (4-byte each) — about ``n/8 + 4m`` bytes; the default of 128 bytes
        covers the paper's largest instances (200 jobs, 20 machines) with
        alignment padding.
    result_bytes:
        Bytes returned per sub-problem (one 4-byte lower bound).
    """

    device: DeviceSpec
    latency_us: float = 15.0
    node_payload_bytes: int = 128
    result_bytes: int = 4

    def payload_for_instance(self, n_jobs: int, n_machines: int) -> int:
        """Per-node payload for a given instance size (bitmap + release times)."""
        bitmap = -(-n_jobs // 8)
        release = 4 * n_machines
        raw = bitmap + release
        # align to 32 bytes like the CUDA struct would be
        return -(-raw // 32) * 32

    def round_trip(
        self,
        pool_size: int,
        n_jobs: int | None = None,
        n_machines: int | None = None,
    ) -> TransferTiming:
        """Timing of shipping ``pool_size`` nodes in and their bounds out."""
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if n_jobs is not None and n_machines is not None:
            payload = self.payload_for_instance(n_jobs, n_machines)
        else:
            payload = self.node_payload_bytes
        bandwidth = self.device.pcie_bandwidth_gbs * 1e9  # bytes/s
        h2d = pool_size * payload / bandwidth
        d2h = pool_size * self.result_bytes / bandwidth
        fixed = 2 * self.latency_us * 1e-6 + self.device.kernel_launch_overhead_us * 1e-6
        return TransferTiming(host_to_device_s=h2d, device_to_host_s=d2h, fixed_overhead_s=fixed)

    def instance_upload(self, total_structure_bytes: int) -> float:
        """One-off cost of copying the instance matrices to the device (seconds)."""
        if total_structure_bytes < 0:
            raise ValueError("total_structure_bytes must be non-negative")
        bandwidth = self.device.pcie_bandwidth_gbs * 1e9
        return self.latency_us * 1e-6 + total_structure_bytes / bandwidth
