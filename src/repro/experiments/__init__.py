"""Experiment harness: regenerate every table and figure of the paper.

Each module corresponds to one artefact of the paper's evaluation:

======================  =====================================================
Module                  Paper artefact
======================  =====================================================
``bounding_fraction``   the ~98.5 % "time spent bounding" preliminary result
``table1``              Table I — data-structure sizes and access counts
``table2``              Table II — speed-ups, all matrices in global memory
``table3``              Table III — speed-ups, PTM+JM in shared memory
``table4``              Table IV — multi-threaded CPU B&B speed-ups
``figure4``             Figure 4 — global vs shared placement per instance
``figure5``             Figure 5 — GPU vs multi-threaded CPU at ~500 GFLOPS
======================  =====================================================

``protocol`` implements the experimental protocol of the paper (a shared
pool of sub-problems evaluated by every engine), ``paper_values`` stores the
published numbers, and ``report`` renders/compares the reproduced tables.
"""

from repro.experiments.protocol import (
    estimate_frontier_depth,
    estimate_remaining_jobs,
    synthetic_pool,
    collect_pending_pool,
    ExperimentProtocol,
)
from repro.experiments.report import ExperimentTable, format_table, compare_tables
from repro.experiments.paper_values import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_FIGURE4,
    PAPER_FIGURE5,
    PAPER_BOUNDING_FRACTION,
    PAPER_INSTANCES,
    PAPER_POOL_SIZES,
    PAPER_THREAD_COUNTS,
)
from repro.experiments.table1 import table1, Table1Row
from repro.experiments.table2 import table2
from repro.experiments.table3 import table3
from repro.experiments.table4 import table4
from repro.experiments.figure4 import figure4
from repro.experiments.figure5 import figure5
from repro.experiments.bounding_fraction import (
    measure_bounding_fraction,
    BoundingFractionResult,
)
from repro.experiments.runner import (
    run_all,
    write_report,
    EvaluationReport,
    ArtefactReport,
)
from repro.experiments.ascii_plot import bar_chart, sparkline, figure_to_text

__all__ = [
    "estimate_frontier_depth",
    "estimate_remaining_jobs",
    "synthetic_pool",
    "collect_pending_pool",
    "ExperimentProtocol",
    "ExperimentTable",
    "format_table",
    "compare_tables",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_FIGURE4",
    "PAPER_FIGURE5",
    "PAPER_BOUNDING_FRACTION",
    "PAPER_INSTANCES",
    "PAPER_POOL_SIZES",
    "PAPER_THREAD_COUNTS",
    "table1",
    "Table1Row",
    "table2",
    "table3",
    "table4",
    "figure4",
    "figure5",
    "measure_bounding_fraction",
    "BoundingFractionResult",
    "run_all",
    "write_report",
    "EvaluationReport",
    "ArtefactReport",
    "bar_chart",
    "sparkline",
    "figure_to_text",
]
