"""Table IV — speed-ups of the multi-threaded CPU B&B.

The rows are the instance classes, the columns the thread counts 3/5/7/9/11
of the paper; every cell is the speed-up over the serial B&B on one core of
the reference host.  The reproduction evaluates the calibrated
:class:`~repro.perf.model.MulticoreScalingModel` (see DESIGN.md §2 for why a
model stands in for pthread measurements), and can optionally attach the
theoretical GFLOPS header row the paper prints above the thread counts.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.paper_values import PAPER_INSTANCES, PAPER_THREAD_COUNTS
from repro.experiments.report import ExperimentTable
from repro.flowshop.bounds import DataStructureComplexity
from repro.perf.flops import TABLE_IV_GFLOPS
from repro.perf.model import MulticoreScalingModel

__all__ = ["table4", "table4_gflops_header"]


def table4(
    instances: Sequence[tuple[int, int]] = PAPER_INSTANCES,
    thread_counts: Sequence[int] = PAPER_THREAD_COUNTS,
    model: MulticoreScalingModel | None = None,
) -> ExperimentTable:
    """Reproduce Table IV (multi-threaded B&B speed-ups)."""
    model = model if model is not None else MulticoreScalingModel()
    table = ExperimentTable(
        title="Table IV - multi-threaded B&B speed-up",
        columns=tuple(thread_counts),
        column_header="threads",
    )
    for n_jobs, n_machines in instances:
        complexity = DataStructureComplexity(n=n_jobs, m=n_machines)
        for threads in thread_counts:
            table.set((n_jobs, n_machines), threads, model.speedup(threads, complexity))
    return table


def table4_gflops_header(
    thread_counts: Sequence[int] = PAPER_THREAD_COUNTS,
    per_thread_gflops: float = 76.8,
) -> dict[int, float]:
    """The "Theoretical Peak of GFLOPS" header row of Table IV.

    The paper multiplies the chip peak (76.8 GFLOPS) by the thread count;
    published values are returned verbatim when available.
    """
    header: dict[int, float] = {}
    for threads in thread_counts:
        header[threads] = TABLE_IV_GFLOPS.get(threads, per_thread_gflops * threads)
    return header
