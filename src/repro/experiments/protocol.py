"""The experimental protocol shared by every engine comparison.

The paper (Section IV) cannot solve the large Taillard instances to
optimality, so it adopts the protocol of Mezmaz et al. [11]: build a list
``L`` of sub-problems whose sequential resolution lasts a known time, then
initialise both the serial and the parallel B&B with exactly the same list,
so the measured ratio is a pure throughput comparison over an identical node
set.

This module provides the same facility for the reproduction:

* :func:`collect_pending_pool` — run a (budgeted) best-first B&B and return
  the pending pool once it reaches the requested size: the faithful version
  of "a random list L of sub-problems", practical for small/medium pools.
* :func:`synthetic_pool` — deterministically generate a pool of random
  partial schedules at the depth a best-first frontier of that size would
  sit at; used for the very large pools of the tables, where actually
  expanding 262 144 pending nodes in pure Python would dominate the harness
  runtime without changing what is being measured (the kernel sees the same
  array shapes and the same amount of work either way).
* :func:`estimate_frontier_depth` / :func:`estimate_remaining_jobs` — the
  depth model used by both the synthetic pools and the analytical cost
  models (deeper frontiers mean fewer remaining jobs per node, which is what
  erodes the speed-up of the small instances at very large pool sizes).
* :class:`ExperimentProtocol` — bundles the above plus the CPU/GPU cost
  models so the table harnesses share one configuration object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.bb.node import Node, root_node
from repro.bb.operators import bound_nodes_batch, branch
from repro.bb.pool import BestFirstPool
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.gpu.device import DeviceSpec, TESLA_C2050
from repro.gpu.simulator import KernelCostModel
from repro.perf.model import CpuCostModel

__all__ = [
    "estimate_frontier_depth",
    "estimate_remaining_jobs",
    "synthetic_pool",
    "collect_pending_pool",
    "ExperimentProtocol",
]


def estimate_frontier_depth(n_jobs: int, pool_size: int) -> int:
    """Depth at which a best-first frontier holds ``pool_size`` pending nodes.

    The number of nodes at depth ``d`` of the permutation tree is
    ``n (n-1) ... (n-d+1)``; the frontier needs to sit at (roughly) the first
    depth whose width reaches the pool size.  The estimate is exact for a
    breadth-first frontier and a good proxy for the mixed-depth best-first
    frontier the protocol actually produces.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    width = 1
    depth = 0
    while width < pool_size and depth < n_jobs:
        width *= n_jobs - depth
        depth += 1
    return depth


def estimate_remaining_jobs(n_jobs: int, pool_size: int) -> int:
    """Average number of unscheduled jobs of the nodes of such a frontier."""
    return max(1, n_jobs - estimate_frontier_depth(n_jobs, pool_size))


def synthetic_pool(
    instance: FlowShopInstance,
    pool_size: int,
    depth: Optional[int] = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic pool of random partial schedules at a given depth.

    Returns the ``(scheduled_mask, release)`` device buffers directly.  The
    release times are computed with the same recurrence the nodes use, so the
    pool is indistinguishable (to the kernel) from one produced by a real
    exploration at that depth.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    n, m = instance.n_jobs, instance.n_machines
    if depth is None:
        depth = estimate_frontier_depth(n, pool_size)
    depth = int(min(max(depth, 0), n))
    rng = np.random.default_rng(seed)
    pt = instance.processing_times

    mask = np.zeros((pool_size, n), dtype=bool)
    release = np.zeros((pool_size, m), dtype=np.int64)
    if depth == 0:
        return mask, release

    # draw prefixes as the first `depth` columns of random permutations
    prefixes = np.argsort(rng.random((pool_size, n)), axis=1)[:, :depth]
    rows = np.repeat(np.arange(pool_size), depth)
    mask[rows, prefixes.reshape(-1)] = True

    # release times: apply the flow-shop recurrence position by position,
    # vectorised over the pool dimension
    for position in range(depth):
        jobs = prefixes[:, position]
        times = pt[jobs]  # (pool, m)
        prev = np.zeros(pool_size, dtype=np.int64)
        for k in range(m):
            start = np.maximum(release[:, k], prev)
            prev = start + times[:, k]
            release[:, k] = prev
    return mask, release


def collect_pending_pool(
    instance: FlowShopInstance,
    pool_size: int,
    data: Optional[LowerBoundData] = None,
    max_expansions: Optional[int] = None,
    seed: int = 0,
    upper_bound: Optional[float] = None,
) -> list[Node]:
    """Run a budgeted best-first expansion until ``pool_size`` nodes are pending.

    This is the faithful version of the paper's list ``L``: the returned
    nodes are genuine pending sub-problems of a best-first exploration seeded
    with the NEH incumbent (or ``upper_bound`` when given — pass
    ``float("inf")`` to disable pruning and keep every generated node).
    ``max_expansions`` bounds the work (default: ``4 * pool_size``
    branchings); if the tree is exhausted first, the pool that remains
    (possibly smaller) is returned.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    data = data if data is not None else LowerBoundData(instance)
    rng = np.random.default_rng(seed)
    if upper_bound is None:
        incumbent = float(neh_heuristic(instance).makespan)
    else:
        incumbent = float(upper_bound)

    pool = BestFirstPool()
    root = root_node(instance)
    bound_nodes_batch([root], data)
    pool.push(root)

    expansions = 0
    budget = max_expansions if max_expansions is not None else 4 * pool_size
    # Not a solve loop: this builds the paper's pending list L by growing a
    # pool to a target SIZE — a stopping predicate SearchDriver does not
    # expose — and returns it unsolved for the protocol's timed phase.
    while pool and len(pool) < pool_size and expansions < budget:  # repro-lint: ignore[single-loop] -- pool-construction helper, terminates at pool_size, never runs the search
        node = pool.pop()
        if node.lower_bound is not None and node.lower_bound >= incumbent:
            continue
        children = branch(node, instance)
        expansions += 1
        if not children:
            continue
        bound_nodes_batch(children, data)
        for child in children:
            if child.is_leaf:
                if child.release[-1] < incumbent:
                    incumbent = float(child.release[-1])
                continue
            if child.lower_bound is not None and child.lower_bound < incumbent:
                pool.push(child)
    pending = list(pool.drain())
    rng.shuffle(pending)  # the paper's list L is "random"
    return pending[:pool_size]


@dataclass(frozen=True)
class ExperimentProtocol:
    """Shared configuration of the table/figure harnesses."""

    device: DeviceSpec = TESLA_C2050
    cpu_model: CpuCostModel = field(default_factory=CpuCostModel)
    cost_model: KernelCostModel = field(default_factory=KernelCostModel)
    threads_per_block: int = 256
    #: use the frontier-depth model to derive the average remaining jobs per
    #: node for each (instance, pool size) pair
    apply_depth_model: bool = True

    def n_remaining(self, n_jobs: int, pool_size: int) -> Optional[int]:
        """Average remaining jobs per node, or ``None`` to assume root-like nodes."""
        if not self.apply_depth_model:
            return None
        return estimate_remaining_jobs(n_jobs, pool_size)
