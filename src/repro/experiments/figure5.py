"""Figure 5 — GPU-based vs multi-threaded B&B at equal computational power.

The paper fixes a ~500 GFLOPS budget (the Tesla C2050's double-precision
peak), which corresponds to 7 threads of the i7-970 in its accounting, and
compares the two speed-ups instance class by instance class.  The GPU side
uses the shared-memory placement (Table III); for every instance class the
best pool size is chosen — exactly how the paper quotes its Figure 5 numbers
(x61.47 for 20x20 at pool 8192, x100.48 for 200x20 at pool 262144).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.paper_values import PAPER_INSTANCES, PAPER_POOL_SIZES
from repro.experiments.protocol import ExperimentProtocol
from repro.experiments.table2 import speedup_table
from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import TESLA_C2050
from repro.gpu.placement import DataPlacement
from repro.perf.flops import FlopsBudget
from repro.perf.model import MulticoreScalingModel
from repro.perf.speedup import SpeedupSeries

__all__ = ["figure5"]


def figure5(
    instances: Sequence[tuple[int, int]] = PAPER_INSTANCES,
    pool_sizes: Sequence[int] = PAPER_POOL_SIZES,
    gflops_budget: float | None = None,
    protocol: ExperimentProtocol | None = None,
    multicore_model: MulticoreScalingModel | None = None,
) -> dict[str, SpeedupSeries]:
    """Reproduce Figure 5: GPU vs multi-threaded speed-up at equal GFLOPS.

    Returns two series keyed ``"gpu"`` and ``"multithreaded"``, indexed by
    the number of jobs of each instance class.
    """
    protocol = protocol if protocol is not None else ExperimentProtocol()
    multicore_model = multicore_model if multicore_model is not None else MulticoreScalingModel()
    if gflops_budget is None:
        gflops_budget = TESLA_C2050.peak_gflops_double
    budget = FlopsBudget(gflops_budget)
    # The paper's GFLOPS accounting credits every thread with the chip's
    # 76.8 GFLOPS figure (Table IV header), so ~500 GFLOPS maps to 7 threads.
    n_threads = budget.cpu_threads(
        multicore_model.cpu, per_thread_gflops=multicore_model.cpu.peak_gflops_double
    )

    gpu_table = speedup_table(
        DataPlacement.shared_ptm_jm(),
        "Figure 5 GPU series",
        instances=instances,
        pool_sizes=pool_sizes,
        protocol=protocol,
        add_average=False,
    )

    gpu_series = SpeedupSeries(label=f"gpu ({TESLA_C2050.name}, ~{gflops_budget:.0f} GFLOPS)")
    cpu_series = SpeedupSeries(label=f"multithreaded ({n_threads} threads)")
    for n_jobs, n_machines in instances:
        best_pool = gpu_table.best_column((n_jobs, n_machines))
        gpu_series.add(n_jobs, gpu_table.get((n_jobs, n_machines), best_pool))
        complexity = DataStructureComplexity(n=n_jobs, m=n_machines)
        cpu_series.add(n_jobs, multicore_model.speedup(n_threads, complexity))
    return {"gpu": gpu_series, "multithreaded": cpu_series}
