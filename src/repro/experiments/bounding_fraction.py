"""The preliminary experiment: how much of the serial B&B is spent bounding?

The paper motivates the whole design with one measurement: on the m=20
Taillard instances, evaluating lower bounds accounts for ~98.5 % of the
serial B&B's runtime.  This harness reproduces the measurement on this
host with the pure-Python serial engine:

* ``mode="measured"`` runs :class:`~repro.bb.sequential.SequentialBranchAndBound`
  with a node budget on a (scaled-down) m=20 instance and reports the
  instrumented time split;
* ``mode="modelled"`` evaluates the analytical cost split implied by the
  CPU cost model (useful when the caller cannot afford a real run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bb.sequential import SequentialBranchAndBound
from repro.experiments.paper_values import PAPER_BOUNDING_FRACTION
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.taillard import taillard_instance

__all__ = ["BoundingFractionResult", "measure_bounding_fraction"]


@dataclass(frozen=True)
class BoundingFractionResult:
    """Outcome of the bounding-fraction measurement."""

    instance_name: str
    n_jobs: int
    n_machines: int
    nodes_bounded: int
    time_total_s: float
    time_bounding_s: float
    paper_fraction: float = PAPER_BOUNDING_FRACTION

    @property
    def fraction(self) -> float:
        if self.time_total_s <= 0:
            return 0.0
        return self.time_bounding_s / self.time_total_s

    def summary(self) -> dict[str, float | int | str]:
        return {
            "instance": self.instance_name,
            "nodes_bounded": self.nodes_bounded,
            "time_total_s": self.time_total_s,
            "time_bounding_s": self.time_bounding_s,
            "bounding_fraction": self.fraction,
            "paper_fraction": self.paper_fraction,
        }


def measure_bounding_fraction(
    instance: Optional[FlowShopInstance] = None,
    max_nodes: int = 2000,
    selection: str = "best-first",
) -> BoundingFractionResult:
    """Measure the share of the serial B&B runtime spent in the bounding operator.

    Parameters
    ----------
    instance:
        Instance to explore; defaults to a Taillard-style ``20x20`` instance
        (the smallest class of the paper's evaluation).
    max_nodes:
        Node budget of the measurement run (the fraction stabilises after a
        few hundred nodes).
    selection:
        Selection strategy of the serial engine.
    """
    if instance is None:
        instance = taillard_instance(20, 20, index=1)
    # The paper's 98.5 % figure measures the scalar, one-call-per-node
    # bounding path; force it so the measurement stays faithful even though
    # the engine defaults to the batched v2 kernel nowadays.
    solver = SequentialBranchAndBound(
        instance, selection=selection, max_nodes=max_nodes, kernel="scalar"
    )
    result = solver.solve()
    return BoundingFractionResult(
        instance_name=instance.name or f"{instance.n_jobs}x{instance.n_machines}",
        n_jobs=instance.n_jobs,
        n_machines=instance.n_machines,
        nodes_bounded=result.stats.nodes_bounded,
        time_total_s=result.stats.time_total_s,
        time_bounding_s=result.stats.time_bounding_s,
    )
