"""Rendering and comparison of reproduced tables.

:class:`ExperimentTable` is a small labelled 2-D table (rows = instance
classes or series, columns = pool sizes or thread counts) with helpers to

* render itself as aligned text (the same layout as the paper's tables),
* compare itself cell-by-cell against the published values and report the
  relative errors (consumed by EXPERIMENTS.md and by the benchmark output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

__all__ = ["ExperimentTable", "format_table", "compare_tables"]


def _label(key: Hashable) -> str:
    if isinstance(key, tuple) and len(key) == 2 and all(isinstance(v, int) for v in key):
        return f"{key[0]}x{key[1]}"
    return str(key)


@dataclass
class ExperimentTable:
    """A labelled table of floats (one paper table or figure series)."""

    title: str
    columns: tuple[Hashable, ...]
    rows: dict[Hashable, dict[Hashable, float]] = field(default_factory=dict)
    column_header: str = "pool size"
    row_header: str = "instance"

    # ------------------------------------------------------------------ #
    def set(self, row: Hashable, column: Hashable, value: float) -> None:
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        self.rows.setdefault(row, {})[column] = float(value)

    def get(self, row: Hashable, column: Hashable) -> float:
        return self.rows[row][column]

    def row_values(self, row: Hashable) -> list[float]:
        return [self.rows[row][c] for c in self.columns if c in self.rows[row]]

    def column_values(self, column: Hashable) -> list[float]:
        return [values[column] for values in self.rows.values() if column in values]

    def add_average_row(self, label: Hashable = "average") -> None:
        """Append the per-column average (the paper's "Average Speedup" row)."""
        averages: dict[Hashable, float] = {}
        for column in self.columns:
            values = self.column_values(column)
            if values:
                averages[column] = sum(values) / len(values)
        self.rows[label] = averages

    def best_column(self, row: Hashable) -> Hashable:
        """Column with the largest value in ``row``."""
        values = self.rows[row]
        return max(values, key=lambda c: values[c])

    # ------------------------------------------------------------------ #
    def to_text(self, precision: int = 2) -> str:
        return format_table(self, precision=precision)

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "columns": [str(c) for c in self.columns],
            "rows": {
                _label(row): {str(c): v for c, v in values.items()}
                for row, values in self.rows.items()
            },
        }

    def compare(
        self, reference: Mapping[Hashable, Mapping[Hashable, float]]
    ) -> "TableComparison":
        """Cell-wise comparison against published values."""
        return compare_tables(self, reference)


@dataclass(frozen=True)
class CellComparison:
    row: Hashable
    column: Hashable
    reproduced: float
    reference: float

    @property
    def relative_error(self) -> float:
        if self.reference == 0:
            return float("inf")
        return (self.reproduced - self.reference) / self.reference


@dataclass
class TableComparison:
    """Outcome of comparing a reproduced table with the published one."""

    table: ExperimentTable
    cells: list[CellComparison]

    @property
    def mean_absolute_relative_error(self) -> float:
        if not self.cells:
            raise ValueError("no overlapping cells to compare")
        return sum(abs(c.relative_error) for c in self.cells) / len(self.cells)

    @property
    def max_absolute_relative_error(self) -> float:
        if not self.cells:
            raise ValueError("no overlapping cells to compare")
        return max(abs(c.relative_error) for c in self.cells)

    def within(self, tolerance: float) -> bool:
        """True when every cell is within ``tolerance`` relative error."""
        return all(abs(c.relative_error) <= tolerance for c in self.cells)

    def summary(self) -> dict[str, float]:
        return {
            "cells": len(self.cells),
            "mean_abs_rel_error": self.mean_absolute_relative_error,
            "max_abs_rel_error": self.max_absolute_relative_error,
        }

    def to_text(self, precision: int = 1) -> str:
        lines = [f"{self.table.title} vs paper:"]
        for cell in self.cells:
            lines.append(
                f"  {_label(cell.row):>10} @ {cell.column}: "
                f"model {cell.reproduced:.2f}  paper {cell.reference:.2f}  "
                f"({cell.relative_error * 100:+.{precision}f}%)"
            )
        lines.append(
            f"  mean |error| = {self.mean_absolute_relative_error * 100:.{precision}f}%  "
            f"max |error| = {self.max_absolute_relative_error * 100:.{precision}f}%"
        )
        return "\n".join(lines)


def compare_tables(
    table: ExperimentTable, reference: Mapping[Hashable, Mapping[Hashable, float]]
) -> TableComparison:
    """Compare every cell present in both ``table`` and ``reference``."""
    cells: list[CellComparison] = []
    for row, ref_values in reference.items():
        if row not in table.rows:
            continue
        for column, ref_value in ref_values.items():
            if column in table.rows[row]:
                cells.append(
                    CellComparison(
                        row=row,
                        column=column,
                        reproduced=table.rows[row][column],
                        reference=float(ref_value),
                    )
                )
    return TableComparison(table=table, cells=cells)


def format_table(table: ExperimentTable, precision: int = 2) -> str:
    """Render an :class:`ExperimentTable` as aligned monospace text."""
    header_cells = [table.row_header] + [str(c) for c in table.columns]
    body: list[list[str]] = []
    for row, values in table.rows.items():
        cells = [_label(row)]
        for column in table.columns:
            if column in values:
                cells.append(f"{values[column]:.{precision}f}")
            else:
                cells.append("-")
        body.append(cells)
    widths = [
        max(len(header_cells[i]), *(len(row[i]) for row in body)) if body else len(header_cells[i])
        for i in range(len(header_cells))
    ]
    lines = [table.title, ""]
    lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(header_cells)))
    lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
    for row in body:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
