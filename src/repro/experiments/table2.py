"""Table II — speed-ups with every matrix in GPU global memory.

For every instance class (rows) and pool size (columns) the harness computes
the ratio between

* the serial time to bound the pool on one CPU core
  (:class:`~repro.perf.model.CpuCostModel`), and
* the simulated time of the GPU off-load — kernel + PCIe transfers + host
  overhead (:class:`~repro.gpu.simulator.GpuSimulator`) — with **all six
  matrices placed in global memory** and the Fermi on-chip memory configured
  as 16 KB shared / 48 KB L1, as in the paper's first scenario.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.paper_values import PAPER_INSTANCES, PAPER_POOL_SIZES
from repro.experiments.protocol import ExperimentProtocol
from repro.experiments.report import ExperimentTable
from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.placement import DataPlacement
from repro.gpu.simulator import GpuSimulator

__all__ = ["table2", "speedup_table"]


def speedup_table(
    placement: DataPlacement,
    title: str,
    instances: Sequence[tuple[int, int]] = PAPER_INSTANCES,
    pool_sizes: Sequence[int] = PAPER_POOL_SIZES,
    protocol: ExperimentProtocol | None = None,
    add_average: bool = True,
) -> ExperimentTable:
    """Generic speed-up sweep used by both Table II and Table III."""
    protocol = protocol if protocol is not None else ExperimentProtocol()
    table = ExperimentTable(title=title, columns=tuple(pool_sizes))
    for n_jobs, n_machines in instances:
        complexity = DataStructureComplexity(n=n_jobs, m=n_machines)
        simulator = GpuSimulator(
            device=protocol.device, placement=placement, cost_model=protocol.cost_model
        )
        for pool_size in pool_sizes:
            n_remaining = protocol.n_remaining(n_jobs, pool_size)
            gpu_timing = simulator.evaluate_pool(
                complexity,
                pool_size,
                threads_per_block=protocol.threads_per_block,
                n_remaining=n_remaining,
            )
            cpu_seconds = protocol.cpu_model.pool_seconds(
                complexity, pool_size, n_remaining=n_remaining
            )
            table.set((n_jobs, n_machines), pool_size, cpu_seconds / gpu_timing.total_s)
    if add_average:
        table.add_average_row()
    return table


def table2(
    instances: Sequence[tuple[int, int]] = PAPER_INSTANCES,
    pool_sizes: Sequence[int] = PAPER_POOL_SIZES,
    protocol: ExperimentProtocol | None = None,
) -> ExperimentTable:
    """Reproduce Table II (all matrices in global memory)."""
    return speedup_table(
        DataPlacement.all_global(),
        "Table II - speed-up, all matrices in global memory",
        instances=instances,
        pool_sizes=pool_sizes,
        protocol=protocol,
    )
