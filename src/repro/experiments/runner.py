"""One-shot runner regenerating every artefact of the paper's evaluation.

:func:`run_all` builds every table/figure/measurement, compares it against
the published values and returns a single JSON-serialisable report; it backs
both the ``python -m repro`` command line and the documentation workflow
that produced EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.experiments.bounding_fraction import measure_bounding_fraction
from repro.experiments.figure4 import figure4
from repro.experiments.figure5 import figure5
from repro.experiments.paper_values import (
    PAPER_BOUNDING_FRACTION,
    PAPER_FIGURE4,
    PAPER_FIGURE5,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.experiments.protocol import ExperimentProtocol
from repro.experiments.report import ExperimentTable
from repro.experiments.table1 import format_table1, table1
from repro.experiments.table2 import table2
from repro.experiments.table3 import table3
from repro.experiments.table4 import table4

__all__ = ["ArtefactReport", "EvaluationReport", "run_all", "write_report"]


@dataclass
class ArtefactReport:
    """One reproduced artefact plus its comparison against the paper."""

    name: str
    payload: dict
    comparison: Optional[dict] = None

    def as_dict(self) -> dict:
        out = {"name": self.name, "payload": self.payload}
        if self.comparison is not None:
            out["vs_paper"] = self.comparison
        return out


@dataclass
class EvaluationReport:
    """The full evaluation: every table, figure and measurement."""

    artefacts: list[ArtefactReport] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"artefacts": [a.as_dict() for a in self.artefacts]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def get(self, name: str) -> ArtefactReport:
        for artefact in self.artefacts:
            if artefact.name == name:
                return artefact
        raise KeyError(f"no artefact named {name!r}")

    def summary_lines(self) -> list[str]:
        """One line per artefact, with the mean error where applicable."""
        lines = []
        for artefact in self.artefacts:
            if artefact.comparison and "mean_abs_rel_error" in artefact.comparison:
                err = artefact.comparison["mean_abs_rel_error"] * 100
                lines.append(f"{artefact.name}: reproduced, mean |error| {err:.1f}% vs paper")
            else:
                lines.append(f"{artefact.name}: reproduced")
        return lines


def _table_artefact(name: str, table: ExperimentTable, reference) -> ArtefactReport:
    comparison = table.compare(reference).summary() if reference else None
    return ArtefactReport(name=name, payload=table.to_dict(), comparison=comparison)


def _series_artefact(name: str, series_by_label, reference) -> ArtefactReport:
    payload = {
        label: {str(int(x)): v for x, v in zip(s.xs(), s.values())}
        for label, s in series_by_label.items()
    }
    comparison = None
    if reference is not None:
        errors = []
        for label, values in reference.items():
            if label not in series_by_label:
                continue
            series = series_by_label[label]
            for (n_jobs, _m), paper_value in values.items():
                if float(n_jobs) in series.points:
                    model_value = series.points[float(n_jobs)]
                    errors.append(abs(model_value - paper_value) / paper_value)
        if errors:
            comparison = {
                "cells": len(errors),
                "mean_abs_rel_error": sum(errors) / len(errors),
                "max_abs_rel_error": max(errors),
            }
    return ArtefactReport(name=name, payload=payload, comparison=comparison)


def run_all(
    protocol: ExperimentProtocol | None = None,
    include_measured: bool = True,
    bounding_fraction_nodes: int = 300,
) -> EvaluationReport:
    """Regenerate every artefact of the paper's evaluation.

    Parameters
    ----------
    protocol:
        Shared device / cost-model configuration.
    include_measured:
        Also run the measured (wall-clock) artefacts — currently the
        bounding-fraction experiment, which takes a few seconds.
    bounding_fraction_nodes:
        Node budget of the bounding-fraction measurement.
    """
    protocol = protocol if protocol is not None else ExperimentProtocol()
    report = EvaluationReport()

    rows = table1(200, 20)
    report.artefacts.append(
        ArtefactReport(
            name="table1",
            payload={
                "text": format_table1(rows),
                "rows": [
                    {
                        "structure": r.structure,
                        "size": r.size_elements,
                        "accesses": r.accesses,
                        "packed_bytes": r.size_bytes_packed,
                    }
                    for r in rows
                ],
            },
        )
    )
    report.artefacts.append(_table_artefact("table2", table2(protocol=protocol), PAPER_TABLE2))
    report.artefacts.append(_table_artefact("table3", table3(protocol=protocol), PAPER_TABLE3))
    report.artefacts.append(_table_artefact("table4", table4(), PAPER_TABLE4))
    report.artefacts.append(_series_artefact("figure4", figure4(protocol=protocol), PAPER_FIGURE4))
    report.artefacts.append(_series_artefact("figure5", figure5(protocol=protocol), PAPER_FIGURE5))

    if include_measured:
        fraction = measure_bounding_fraction(max_nodes=bounding_fraction_nodes)
        report.artefacts.append(
            ArtefactReport(
                name="bounding_fraction",
                payload=dict(fraction.summary()),
                comparison={
                    "paper": PAPER_BOUNDING_FRACTION,
                    "reproduced": fraction.fraction,
                    "abs_difference": abs(fraction.fraction - PAPER_BOUNDING_FRACTION),
                },
            )
        )
    return report


def write_report(report: EvaluationReport, path: str | Path) -> Path:
    """Serialise a report to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(report.to_json() + "\n")
    return path
