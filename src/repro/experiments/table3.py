"""Table III — speed-ups with PTM and JM in shared memory.

Same sweep as Table II, but with the paper's recommended data placement:
``PTM`` and ``JM`` staged in the 48 KB shared-memory slice of each SM, every
other structure in global memory behind the (now 16 KB) L1.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.paper_values import PAPER_INSTANCES, PAPER_POOL_SIZES
from repro.experiments.protocol import ExperimentProtocol
from repro.experiments.report import ExperimentTable
from repro.experiments.table2 import speedup_table
from repro.gpu.placement import DataPlacement

__all__ = ["table3"]


def table3(
    instances: Sequence[tuple[int, int]] = PAPER_INSTANCES,
    pool_sizes: Sequence[int] = PAPER_POOL_SIZES,
    protocol: ExperimentProtocol | None = None,
) -> ExperimentTable:
    """Reproduce Table III (PTM and JM in shared memory)."""
    return speedup_table(
        DataPlacement.shared_ptm_jm(),
        "Table III - speed-up, PTM and JM in shared memory",
        instances=instances,
        pool_sizes=pool_sizes,
        protocol=protocol,
    )
