"""Terminal-friendly rendering of the paper's figures.

The paper presents Figures 4 and 5 as line/bar charts.  The reproduction is
meant to run in headless environments (no matplotlib is assumed), so this
module renders :class:`~repro.perf.speedup.SpeedupSeries` collections as
plain-text charts: a horizontal bar chart per x-value (the natural shape for
the four instance classes) and a compact sparkline for pool-size sweeps.
They are used by the examples and by the ``evaluate`` CLI command.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.perf.speedup import SpeedupSeries

__all__ = ["bar_chart", "sparkline", "figure_to_text"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(
    series_by_label: Mapping[str, SpeedupSeries],
    width: int = 50,
    value_format: str = "{:.1f}",
    x_label: str = "jobs",
) -> str:
    """Horizontal bar chart comparing several series at the same x-values.

    Every x-value becomes a group of bars (one per series), scaled to the
    global maximum so the series are visually comparable — the layout of the
    paper's Figure 4 / Figure 5.
    """
    if not series_by_label:
        raise ValueError("at least one series is required")
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    all_values = [v for s in series_by_label.values() for v in s.values()]
    if not all_values:
        raise ValueError("series contain no points")
    maximum = max(all_values)
    label_width = max(len(label) for label in series_by_label)
    xs: list[float] = sorted({x for s in series_by_label.values() for x in s.points})

    lines: list[str] = []
    for x in xs:
        lines.append(f"{x_label} = {int(x) if float(x).is_integer() else x}")
        for label, series in series_by_label.items():
            if x not in series.points:
                continue
            value = series.points[x]
            bar = "#" * max(1, round(width * value / maximum))
            lines.append(f"  {label.ljust(label_width)} |{bar} " + value_format.format(value))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series (e.g. speed-up vs pool size)."""
    values = list(values)
    if not values:
        raise ValueError("values must not be empty")
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def figure_to_text(
    title: str,
    series_by_label: Mapping[str, SpeedupSeries],
    width: int = 50,
    x_label: str = "jobs",
) -> str:
    """A titled text figure: bar chart plus per-series sparklines."""
    parts = [title, "=" * len(title), ""]
    parts.append(bar_chart(series_by_label, width=width, x_label=x_label))
    parts.append("trend per series (left to right = increasing x):")
    for label, series in series_by_label.items():
        parts.append(f"  {label}: {sparkline(series.values())}")
    return "\n".join(parts) + "\n"
