"""The numbers published in the paper, kept verbatim for comparison.

The experiment harness reproduces each table/figure with the simulated
device and the calibrated cost models; EXPERIMENTS.md reports the deltas
against the values below.  The values are transcribed from the paper
(decimal commas converted to points).
"""

from __future__ import annotations

__all__ = [
    "PAPER_INSTANCES",
    "PAPER_POOL_SIZES",
    "PAPER_THREAD_COUNTS",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_FIGURE4",
    "PAPER_FIGURE5",
    "PAPER_BOUNDING_FRACTION",
    "PAPER_BEST_POOL_SIZE",
]

#: The instance classes of the evaluation (jobs, machines), largest first as
#: in the tables.
PAPER_INSTANCES: tuple[tuple[int, int], ...] = ((200, 20), (100, 20), (50, 20), (20, 20))

#: The pool sizes of Tables II/III (columns).
PAPER_POOL_SIZES: tuple[int, ...] = (4096, 8192, 16384, 32768, 65536, 131072, 262144)

#: The thread counts of Table IV (columns).
PAPER_THREAD_COUNTS: tuple[int, ...] = (3, 5, 7, 9, 11)

#: Share of the serial B&B runtime spent in the bounding operator (Section I/III).
PAPER_BOUNDING_FRACTION: float = 0.985

#: Table II — parallel efficiency (speed-up over one CPU core), every matrix
#: in GPU global memory.  Keyed by (n_jobs, n_machines) -> {pool_size: value}.
PAPER_TABLE2: dict[tuple[int, int], dict[int, float]] = {
    (200, 20): {
        4096: 46.63,
        8192: 60.88,
        16384: 63.80,
        32768: 67.51,
        65536: 73.47,
        131072: 75.94,
        262144: 77.46,
    },
    (100, 20): {
        4096: 45.35,
        8192: 58.49,
        16384: 60.15,
        32768: 62.75,
        65536: 66.49,
        131072: 66.64,
        262144: 67.01,
    },
    (50, 20): {
        4096: 44.39,
        8192: 58.30,
        16384: 57.72,
        32768: 57.68,
        65536: 57.37,
        131072: 57.01,
        262144: 56.42,
    },
    (20, 20): {
        4096: 41.71,
        8192: 50.28,
        16384: 49.19,
        32768: 45.90,
        65536: 42.03,
        131072: 41.80,
        262144: 41.65,
    },
}

#: Table III — same sweep with PTM and JM in shared memory.
PAPER_TABLE3: dict[tuple[int, int], dict[int, float]] = {
    (200, 20): {
        4096: 66.13,
        8192: 87.34,
        16384: 88.86,
        32768: 95.23,
        65536: 98.83,
        131072: 99.89,
        262144: 100.48,
    },
    (100, 20): {
        4096: 65.85,
        8192: 86.33,
        16384: 87.60,
        32768: 89.18,
        65536: 91.41,
        131072: 92.02,
        262144: 92.39,
    },
    (50, 20): {
        4096: 64.91,
        8192: 81.50,
        16384: 78.02,
        32768: 74.16,
        65536: 73.83,
        131072: 73.25,
        262144: 72.71,
    },
    (20, 20): {
        4096: 53.64,
        8192: 61.47,
        16384: 59.55,
        32768: 51.39,
        65536: 47.40,
        131072: 46.53,
        262144: 46.37,
    },
}

#: Table IV — multi-threaded B&B speed-ups over one CPU core.
#: Keyed by (n_jobs, n_machines) -> {n_threads: value}.
PAPER_TABLE4: dict[tuple[int, int], dict[int, float]] = {
    (200, 20): {3: 4.03, 5: 6.98, 7: 8.76, 9: 9.04, 11: 9.32},
    (100, 20): {3: 4.27, 5: 7.08, 7: 8.82, 9: 9.39, 11: 9.85},
    (50, 20): {3: 4.38, 5: 7.27, 7: 9.06, 9: 9.64, 11: 10.17},
    (20, 20): {3: 4.43, 5: 7.35, 7: 9.22, 9: 10.04, 11: 10.85},
}

#: Theoretical GFLOPS associated with each Table IV thread count.
PAPER_TABLE4_GFLOPS: dict[int, float] = {3: 230.4, 5: 384.0, 7: 537.6, 9: 691.2, 11: 844.8}

#: Figure 4 — speed-up per instance at pool size 262144 (1024x256) for the
#: two placements.  The values are the corresponding Table II / Table III
#: columns (the figure plots exactly that slice).
PAPER_FIGURE4: dict[str, dict[tuple[int, int], float]] = {
    "all_global": {klass: PAPER_TABLE2[klass][262144] for klass in PAPER_TABLE2},
    "shared_ptm_jm": {klass: PAPER_TABLE3[klass][262144] for klass in PAPER_TABLE3},
}

#: Figure 5 — GPU vs multi-threaded CPU at the same ~500 GFLOPS budget.
#: The paper quotes the GPU values at the 8192 pool size of Table III for
#: 20x20 (x61.47) and the best pool for 200x20 (x100.48), against the
#: 7-thread column of Table IV.
PAPER_FIGURE5: dict[str, dict[tuple[int, int], float]] = {
    "gpu": {(200, 20): 100.48, (100, 20): 92.39, (50, 20): 81.50, (20, 20): 61.47},
    "multithreaded": {klass: PAPER_TABLE4[klass][7] for klass in PAPER_TABLE4},
}

#: Best pool size per instance class as reported in Section IV-A.
PAPER_BEST_POOL_SIZE: dict[tuple[int, int], int] = {
    (200, 20): 262144,
    (100, 20): 262144,
    (50, 20): 8192,
    (20, 20): 8192,
}
