"""Table I — the six data structures, their sizes and access counts.

The paper's Table I is an analytical table (no hardware involved), so the
reproduction is exact: the formulas are evaluated by
:class:`~repro.flowshop.bounds.DataStructureComplexity` and rendered in the
same row order.  The harness additionally reports the byte footprints under
the packed device layout, which is the input of the shared-memory capacity
argument of Section IV-B (JM ~38 KB, LM ~38 KB, PTM ~4 KB for 200x20).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.placement import DEFAULT_ELEMENT_BYTES, STRUCTURE_NAMES

__all__ = ["Table1Row", "table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    structure: str
    size_elements: int
    size_expression: str
    accesses: int
    accesses_expression: str
    size_bytes_packed: int


_SIZE_EXPRESSIONS = {
    "PTM": "n*m",
    "LM": "n*m*(m-1)/2",
    "JM": "n*m*(m-1)/2",
    "RM": "m",
    "QM": "m",
    "MM": "m*(m-1)",
}

_ACCESS_EXPRESSIONS = {
    "PTM": "n'*m*(m-1)",
    "LM": "n'*m*(m-1)/2",
    "JM": "n*m*(m-1)/2",
    "RM": "m*(m-1)",
    "QM": "m*(m-1)/2",
    "MM": "m*(m-1)",
}


def table1(
    n_jobs: int = 200,
    n_machines: int = 20,
    n_remaining: int | None = None,
) -> list[Table1Row]:
    """Rows of Table I for an instance size (defaults to the largest class)."""
    complexity = DataStructureComplexity(n=n_jobs, m=n_machines)
    sizes = complexity.sizes()
    accesses = complexity.accesses(n_remaining)
    rows = []
    for name in STRUCTURE_NAMES:
        rows.append(
            Table1Row(
                structure=name,
                size_elements=sizes[name],
                size_expression=_SIZE_EXPRESSIONS[name],
                accesses=accesses[name],
                accesses_expression=_ACCESS_EXPRESSIONS[name],
                size_bytes_packed=sizes[name] * DEFAULT_ELEMENT_BYTES[name],
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table I as aligned text."""
    header = ["Matrix", "Size", "Size (elements)", "Accesses", "Accesses (count)", "Packed bytes"]
    body = [
        [
            r.structure,
            r.size_expression,
            str(r.size_elements),
            r.accesses_expression,
            str(r.accesses),
            str(r.size_bytes_packed),
        ]
        for r in rows
    ]
    widths = [max(len(header[i]), *(len(row[i]) for row in body)) for i in range(len(header))]
    lines = ["Table I - data structures of the LB kernel", ""]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in body:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)
