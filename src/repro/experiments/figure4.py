"""Figure 4 — speed-up per instance, global vs shared placement.

The figure plots, for the fixed pool size 262 144 (1024 x 256), the speed-up
of every instance class under the two placements of Tables II and III.  The
harness reuses the table machinery and returns one
:class:`~repro.perf.speedup.SpeedupSeries` per placement so the benchmark
and the examples can print the same two curves the paper plots.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.paper_values import PAPER_INSTANCES
from repro.experiments.protocol import ExperimentProtocol
from repro.experiments.report import ExperimentTable
from repro.experiments.table2 import speedup_table
from repro.gpu.placement import DataPlacement
from repro.perf.speedup import SpeedupSeries

__all__ = ["figure4"]

FIGURE4_POOL_SIZE = 262144


def figure4(
    instances: Sequence[tuple[int, int]] = PAPER_INSTANCES,
    pool_size: int = FIGURE4_POOL_SIZE,
    protocol: ExperimentProtocol | None = None,
) -> dict[str, SpeedupSeries]:
    """Reproduce Figure 4: two series of speed-ups indexed by the job count."""
    protocol = protocol if protocol is not None else ExperimentProtocol()
    series: dict[str, SpeedupSeries] = {}
    for key, placement in (
        ("all_global", DataPlacement.all_global()),
        ("shared_ptm_jm", DataPlacement.shared_ptm_jm()),
    ):
        table: ExperimentTable = speedup_table(
            placement,
            f"Figure 4 series ({key})",
            instances=instances,
            pool_sizes=(pool_size,),
            protocol=protocol,
            add_average=False,
        )
        curve = SpeedupSeries(label=key)
        for n_jobs, n_machines in instances:
            curve.add(n_jobs, table.get((n_jobs, n_machines), pool_size))
        series[key] = curve
    return series
