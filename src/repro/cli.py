"""Command-line interface.

The sub-commands cover the library's main workflows::

    python -m repro solve      --jobs 20 --machines 10        # solve an instance
    python -m repro solve      --file my_instance.txt --engine gpu
    python -m repro solve      --engine serial --checkpoint run.rpbb --checkpoint-interval 1000
    python -m repro resume     run.rpbb                       # continue a checkpointed solve
    python -m repro autotune   --jobs 200 --machines 20       # pick the pool size
    python -m repro evaluate   --output report.json           # regenerate all tables/figures
    python -m repro serve      --port 7227                    # solve-as-a-service
    python -m repro lint       --format json                  # architecture lint (dev checkouts)

``solve`` accepts Taillard-format or JSON instance files (see
:mod:`repro.flowshop.io`) or generates a Taillard-style instance of the
requested size; engines: ``gpu`` (default), ``serial``, ``multicore``,
``cluster``.  ``solve --checkpoint`` (serial engine) writes crash-consistent
search snapshots that ``resume`` continues bit-identically — same makespan,
permutation, and counters as one uninterrupted run (``docs/ARCHITECTURE.md``,
"Snapshot format").  ``serve`` runs the JSON-lines TCP solve service with
cross-session batched bounding (see ``docs/SERVING.md``).  ``lint`` runs
the repo's AST-based architecture/concurrency checks (``tools/repro_lint``
— requires a source checkout; see "Enforced invariants" in
``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.bb.multicore import MulticoreBranchAndBound
from repro.bb.sequential import SequentialBranchAndBound
from repro.core.autotune import PoolSizeAutotuner
from repro.core.cluster import ClusterBranchAndBound, ClusterSpec
from repro.core.config import GpuBBConfig
from repro.core.gpu_bb import GpuBranchAndBound
from repro.experiments.runner import run_all, write_report
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.io import read_json_file, read_taillard_file
from repro.flowshop.taillard import taillard_instance

__all__ = ["build_parser", "main"]


def _load_instance(args: argparse.Namespace) -> FlowShopInstance:
    if args.file:
        path = Path(args.file)
        if not path.exists():
            raise SystemExit(f"instance file not found: {path}")
        if path.suffix.lower() == ".json":
            return read_json_file(path)
        return read_taillard_file(path)
    return taillard_instance(args.jobs, args.machines, index=args.index)


def _solve(args: argparse.Namespace) -> int:
    instance = _load_instance(args)
    engine = args.engine
    if args.checkpoint is not None and engine != "serial":
        raise SystemExit(
            f"--checkpoint is only supported by --engine serial (got {engine!r}); "
            "the service engines checkpoint via `repro serve`"
        )
    if args.checkpoint is None and (
        args.checkpoint_interval is not None or args.checkpoint_seconds is not None
    ):
        raise SystemExit("--checkpoint-interval/--checkpoint-seconds require --checkpoint")
    print(
        f"instance : {instance.name or 'unnamed'} "
        f"({instance.n_jobs} jobs x {instance.n_machines} machines)"
    )
    print(f"engine   : {engine}")

    if engine == "serial":
        result = SequentialBranchAndBound(
            instance,
            max_nodes=args.max_nodes,
            max_time_s=args.max_time,
            layout=args.node_layout,
            max_frontier_nodes=args.max_frontier_nodes,
            frontier_index=args.frontier_index,
            overlap=args.overlap,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_interval,
            checkpoint_seconds=args.checkpoint_seconds,
        ).solve()
    elif engine == "multicore":
        if args.overlap == "async":
            raise SystemExit(
                "--overlap async applies to the batch-shaped engines "
                "(gpu/cluster) and serial; the multicore engine does not take it"
            )
        result = MulticoreBranchAndBound(
            instance,
            n_workers=args.workers,
            backend="process",
            mode=args.parallel_mode,
            decomposition_depth=args.decomposition_depth,
            max_nodes_per_task=args.max_nodes,
            max_time_s=args.max_time,
            layout=args.node_layout,
            max_frontier_nodes=args.max_frontier_nodes,
            frontier_index=args.frontier_index,
        ).solve()
    elif engine == "cluster":
        config = GpuBBConfig(
            pool_size=args.pool_size,
            max_nodes=args.max_nodes,
            max_time_s=args.max_time,
            layout=args.node_layout,
            max_frontier_nodes=args.max_frontier_nodes,
            frontier_index=args.frontier_index,
            overlap=args.overlap,
        )
        result = ClusterBranchAndBound(instance, ClusterSpec(n_nodes=args.nodes), config).solve()
    else:  # gpu
        config = GpuBBConfig(
            pool_size=args.pool_size,
            max_nodes=args.max_nodes,
            max_time_s=args.max_time,
            layout=args.node_layout,
            max_frontier_nodes=args.max_frontier_nodes,
            frontier_index=args.frontier_index,
            overlap=args.overlap,
        )
        result = GpuBranchAndBound(instance, config).solve()

    _print_result(result)
    return 0


def _print_result(result) -> None:
    print(f"makespan : {result.best_makespan}")
    print(f"order    : {' '.join(str(j) for j in result.best_order)}")
    print(f"optimal  : {result.proved_optimal}")
    stats = result.stats
    print(
        f"nodes    : bounded={stats.nodes_bounded} pruned={stats.nodes_pruned} "
        f"pools={stats.pools_evaluated}"
    )
    device_note = (
        f", {stats.simulated_device_time_s * 1e3:.2f}ms simulated device"
        if stats.simulated_device_time_s
        else ""
    )
    print(f"time     : {stats.time_total_s:.3f}s wall" + device_note)


def _resume(args: argparse.Namespace) -> int:
    from repro.bb.snapshot import SnapshotError, load_header

    path = Path(args.snapshot)
    if not path.exists():
        raise SystemExit(f"snapshot file not found: {path}")
    try:
        header = load_header(path)
    except SnapshotError as exc:
        raise SystemExit(f"cannot resume {path}: {exc}") from exc
    engine_conf = header.get("engine") or {}
    print(f"snapshot : {path} (format v{header['format_version']})")
    print(
        f"instance : {header['instance']['name'] or 'unnamed'} "
        f"({header['instance']['n_jobs']} jobs x "
        f"{header['instance']['n_machines']} machines)"
    )
    print(
        f"engine   : serial ({engine_conf.get('selection', 'best-first')}, "
        f"{header['layout']} layout)"
    )
    try:
        result = SequentialBranchAndBound.resume(
            path,
            max_nodes=args.max_nodes,
            max_time_s=args.max_time,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_interval,
            checkpoint_seconds=args.checkpoint_seconds,
        )
    except SnapshotError as exc:
        raise SystemExit(f"cannot resume {path}: {exc}") from exc
    _print_result(result)
    return 0


def _autotune(args: argparse.Namespace) -> int:
    instance = _load_instance(args)
    tuner = PoolSizeAutotuner(instance, GpuBBConfig(), mode=args.mode)
    report = tuner.run()
    print(f"instance        : {instance.name} ({instance.n_jobs}x{instance.n_machines})")
    print(f"mode            : {report.mode}")
    for sample in report.samples:
        print(
            f"  pool {sample.pool_size:>7}: predicted speed-up x{sample.predicted_speedup:7.1f}"
            f"  ({sample.per_node_s * 1e6:.2f} us/node)"
        )
    print(f"best pool size  : {report.best_pool_size}")
    return 0


def _evaluate(args: argparse.Namespace) -> int:
    report = run_all(include_measured=not args.skip_measured)
    for line in report.summary_lines():
        print(line)
    if args.figures:
        from repro.experiments.ascii_plot import figure_to_text
        from repro.experiments.figure4 import figure4
        from repro.experiments.figure5 import figure5

        print()
        print(figure_to_text("Figure 4 - placement comparison (pool 262144)", figure4()))
        print(figure_to_text("Figure 5 - GPU vs multi-threaded (~500 GFLOPS)", figure5()))
    if args.output:
        path = write_report(report, args.output)
        print(f"full report written to {path}")
    return 0


def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.dispatch import FlushPolicy
    from repro.service.server import SolveServer
    from repro.service.service import SolveService

    async def run() -> int:
        service = SolveService(
            max_active_sessions=args.max_active,
            max_queued=args.max_queued,
            flush_policy=FlushPolicy(
                max_wait_s=args.max_wait_ms / 1000.0,
                max_batch_nodes=args.max_batch_nodes,
            ),
            overlap=args.overlap,
        )
        async with service:
            server = SolveServer(service, host=args.host, port=args.port)
            await server.start()
            print(f"serving on {args.host}:{server.port} "
                  f"(max_active={args.max_active}, max_queued={args.max_queued})")
            try:
                await server.serve_forever()
            except asyncio.CancelledError:  # pragma: no cover - signal path
                pass
            finally:
                await server.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


def _find_lint_root(explicit: Optional[str]) -> Optional[Path]:
    """The checkout holding ``tools/repro_lint`` (the suite is not shipped)."""
    if explicit:
        root = Path(explicit).resolve()
        return root if (root / "tools" / "repro_lint" / "framework.py").is_file() else None
    current = Path.cwd().resolve()
    for candidate in (current, *current.parents):
        if (candidate / "tools" / "repro_lint" / "framework.py").is_file():
            return candidate
    return None


def _lint(args: argparse.Namespace) -> int:
    root = _find_lint_root(args.root)
    if root is None:
        print(
            "repro lint: tools/repro_lint not found — run from a source checkout "
            "or pass --root <checkout>",
            file=sys.stderr,
        )
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.repro_lint import main as lint_main

    forwarded = ["--root", str(root), "--format", args.format]
    if args.output:
        forwarded += ["--output", args.output]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.update_baseline:
        forwarded += ["--update-baseline"]
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU-accelerated Branch-and-Bound for the flow-shop problem "
        "(reproduction of Melab et al., CLUSTER 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--file", help="instance file (Taillard text or JSON)")
        p.add_argument("--jobs", type=int, default=20, help="jobs of the generated instance")
        p.add_argument(
            "--machines", type=int, default=10, help="machines of the generated instance"
        )
        p.add_argument("--index", type=int, default=1, help="index within the Taillard class")

    solve = sub.add_parser("solve", help="solve one instance to optimality")
    add_instance_arguments(solve)
    solve.add_argument("--engine", choices=("gpu", "serial", "multicore", "cluster"), default="gpu")
    solve.add_argument("--pool-size", type=int, default=8192, help="GPU off-load pool size")
    solve.add_argument(
        "--n-workers",
        "--workers",
        dest="workers",
        type=int,
        default=4,
        help="multicore worker count",
    )
    solve.add_argument(
        "--parallel-mode",
        choices=("worksteal", "static"),
        default="worksteal",
        help="multicore engine: shared-incumbent work stealing (default) or static split",
    )
    solve.add_argument(
        "--decomposition-depth",
        type=int,
        default=None,
        help="prefix depth of the sub-tree decomposition "
        "(default: 2 for worksteal, 1 for static)",
    )
    solve.add_argument(
        "--node-layout",
        choices=("block", "object"),
        default="block",
        help="node representation: vectorized structure-of-arrays blocks (default) "
        "or the paper-faithful one-object-per-node pipeline",
    )
    solve.add_argument("--nodes", type=int, default=4, help="cluster node count")
    solve.add_argument(
        "--max-frontier-nodes",
        type=int,
        default=None,
        help="block layout: high-water frontier memory cap — once this many nodes are "
        "pending, best-first selection runs depth-first-restricted and stays there "
        "until the pool drains below the 0.8x-cap low-water mark (hysteresis, no "
        "regime flapping at the boundary); the pool cannot grow unbounded "
        "(default: no cap)",
    )
    solve.add_argument(
        "--frontier-index",
        choices=("segmented", "linear"),
        default="segmented",
        help="block layout: frontier selection index — 'segmented' (default) keeps "
        "cached per-segment key minima for sublinear best-first pops at large "
        "frontiers; 'linear' is the full-scan ablation (selection is bit-identical "
        "either way)",
    )
    solve.add_argument(
        "--overlap",
        choices=("sync", "async"),
        default="sync",
        help="offload execution: 'sync' bounds on the driver thread; 'async' runs "
        "each launch on a dedicated worker thread behind a two-slot pipeline so "
        "selection/branching of the next batch overlaps bounding of the current "
        "one (batch engines; results are bit-identical; the serial engine accepts "
        "the knob as a no-op)",
    )
    solve.add_argument("--max-nodes", type=int, default=None, help="node exploration budget")
    solve.add_argument("--max-time", type=float, default=None, help="time budget in seconds")

    def add_checkpoint_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--checkpoint",
            default=None,
            help="write crash-consistent search snapshots to this file "
            "(serial engine only; resume with `repro resume`)",
        )
        p.add_argument(
            "--checkpoint-interval",
            type=int,
            default=None,
            help="snapshot every N driver steps (requires --checkpoint)",
        )
        p.add_argument(
            "--checkpoint-seconds",
            type=float,
            default=None,
            help="snapshot at least every T seconds (requires --checkpoint)",
        )

    add_checkpoint_arguments(solve)
    solve.set_defaults(func=_solve)

    resume = sub.add_parser(
        "resume",
        help="continue a checkpointed solve from a snapshot file (bit-identical)",
    )
    resume.add_argument("snapshot", help="snapshot file written by --checkpoint")
    resume.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="cumulative node budget (counts nodes explored across all segments)",
    )
    resume.add_argument(
        "--max-time", type=float, default=None, help="time budget for this segment in seconds"
    )
    add_checkpoint_arguments(resume)
    resume.set_defaults(func=_resume)

    autotune = sub.add_parser("autotune", help="pick the off-load pool size for an instance")
    add_instance_arguments(autotune)
    autotune.add_argument("--mode", choices=("model", "measure"), default="model")
    autotune.set_defaults(func=_autotune)

    evaluate = sub.add_parser("evaluate", help="regenerate every table/figure of the paper")
    evaluate.add_argument("--output", help="write the full JSON report to this path")
    evaluate.add_argument(
        "--skip-measured", action="store_true", help="skip the wall-clock measurements (faster)"
    )
    evaluate.add_argument(
        "--figures", action="store_true", help="also render Figures 4 and 5 as text charts"
    )
    evaluate.set_defaults(func=_evaluate)

    serve = sub.add_parser(
        "serve", help="run the JSON-lines solve service (cross-session batched bounding)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7227, help="bind port (0 picks a free one)")
    serve.add_argument(
        "--max-active", type=int, default=8, help="sessions solving concurrently"
    )
    serve.add_argument(
        "--max-queued", type=int, default=64, help="admission queue bound (backpressure)"
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="dispatcher flush policy: longest a parked bounding batch waits for peers",
    )
    serve.add_argument(
        "--overlap",
        choices=("sync", "async"),
        default="sync",
        help="dispatcher execution: 'async' hands each fused launch to a dedicated "
        "worker thread so the pump keeps collecting while the kernel runs "
        "(per-session results are bit-identical)",
    )
    serve.add_argument(
        "--max-batch-nodes",
        type=int,
        default=65536,
        help="dispatcher flush policy: fused-launch size cap",
    )
    serve.set_defaults(func=_serve)

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST-based architecture & concurrency checks",
    )
    lint.add_argument("--root", help="repository checkout to lint (default: walk up from CWD)")
    lint.add_argument(
        "--format", choices=("human", "json"), default="human", help="stdout format"
    )
    lint.add_argument("--output", help="also write the JSON report to this path")
    lint.add_argument("--baseline", help="baseline file (default: the committed one)")
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current unsuppressed findings",
    )
    lint.set_defaults(func=_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro`` (returns the exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
