"""Test support: deterministic fault injection for the chaos suite.

Unranked in the layer DAG — importable from anywhere, but only imported
by tests and the chaos CI step, never by solver or service code paths.
"""

from repro.testing.faults import FaultInjector, SimulatedFault

__all__ = ["FaultInjector", "SimulatedFault"]
