"""Deterministic fault injection for the chaos tests (``tests/test_chaos.py``).

A :class:`FaultInjector` manufactures the hooks the fault-tolerant stack
exposes as injection seams:

- ``launch_failure`` / ``random_launch_failure`` / ``slow_launch`` plug
  into :class:`~repro.service.dispatch.BatchDispatcher` (``launch_hook``,
  called with the 1-based launch index at the top of every bounding
  launch attempt — retries get fresh indices, so an every-Nth fault is
  recovered by a single retry);
- ``session_kill`` plugs into :class:`~repro.service.session.SolveSession`
  (``fault_hook``, called with the driver step before each selection) and
  into :class:`~repro.service.service.SolveService` via
  ``session_fault_hook`` — the hook keeps its remaining-faults budget in
  the injector, so a restarted session incarnation does not re-arm it;
- :meth:`truncate_file` / :meth:`corrupt_file` damage snapshot files on
  disk the way a crashed writer or bad sector would.

Everything is driven by one seeded :class:`random.Random`, so a chaos run
is reproducible from ``FaultInjector(seed=...)`` alone.  Injected errors
are :class:`SimulatedFault` (a ``RuntimeError``), distinguishable from
genuine bugs in assertions.  Hooks are thread-safe: dispatcher hooks fire
on the flusher thread, session hooks on executor worker threads.
"""

from __future__ import annotations

import random
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Union

__all__ = ["FaultInjector", "SimulatedFault"]


class SimulatedFault(RuntimeError):
    """An injected failure — never raised by production code."""


class FaultInjector:
    """Build deterministic fault hooks and record every fault that fired.

    Parameters
    ----------
    seed:
        Seeds the private RNG used by :meth:`random_launch_failure` and
        :meth:`corrupt_file`; two injectors with the same seed inject
        the same fault schedule.

    Attributes
    ----------
    fired:
        ``(kind, where)`` tuples appended (under a lock) every time a
        hook injects — what the chaos tests assert accounting against.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.fired: list[tuple[str, int]] = []

    def _record(self, kind: str, where: int) -> None:
        with self._lock:
            self.fired.append((kind, where))

    def count(self, kind: str) -> int:
        """How many faults of ``kind`` have fired so far."""
        with self._lock:
            return sum(1 for fired_kind, _ in self.fired if fired_kind == kind)

    # ------------------------------------------------------------------ #
    #  dispatcher seams (BatchDispatcher launch_hook)
    # ------------------------------------------------------------------ #
    def launch_failure(
        self, every_n: int, times: Optional[int] = None
    ) -> Callable[[int], None]:
        """Raise :class:`SimulatedFault` on every ``every_n``-th launch.

        ``times`` caps the total number of injected failures (``None`` =
        unlimited).  With the dispatcher's default single retry budget an
        ``every_n >= 2`` schedule is always recovered: the retry draws a
        fresh launch index, which cannot also be divisible.
        """
        if every_n < 1:
            raise ValueError("every_n must be >= 1")
        remaining = [times]

        def hook(launch_index: int) -> None:
            if launch_index % every_n != 0:
                return
            with self._lock:
                if remaining[0] is not None:
                    if remaining[0] <= 0:
                        return
                    remaining[0] -= 1
                self.fired.append(("launch-failure", launch_index))
            raise SimulatedFault(f"injected failure on launch {launch_index}")

        return hook

    def random_launch_failure(
        self, probability: float, times: Optional[int] = None
    ) -> Callable[[int], None]:
        """Raise on each launch with seeded probability (reproducible)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        remaining = [times]

        def hook(launch_index: int) -> None:
            with self._lock:
                if remaining[0] is not None and remaining[0] <= 0:
                    return
                if self._rng.random() >= probability:
                    return
                if remaining[0] is not None:
                    remaining[0] -= 1
                self.fired.append(("launch-failure", launch_index))
            raise SimulatedFault(f"injected random failure on launch {launch_index}")

        return hook

    def slow_launch(
        self, sleep_s: float, every_n: int = 1, times: Optional[int] = None
    ) -> Callable[[int], None]:
        """Stall selected launches by ``sleep_s`` (trips the launch watchdog)."""
        if sleep_s < 0:
            raise ValueError("sleep_s must be >= 0")
        if every_n < 1:
            raise ValueError("every_n must be >= 1")
        remaining = [times]

        def hook(launch_index: int) -> None:
            if launch_index % every_n != 0:
                return
            with self._lock:
                if remaining[0] is not None:
                    if remaining[0] <= 0:
                        return
                    remaining[0] -= 1
                self.fired.append(("slow-launch", launch_index))
            time.sleep(sleep_s)

        return hook

    # ------------------------------------------------------------------ #
    #  session seam (SolveSession fault_hook / SolveService session_fault_hook)
    # ------------------------------------------------------------------ #
    def session_kill(self, at_step: int, times: int = 1) -> Callable[[int], None]:
        """Kill the session thread at driver step ``>= at_step``.

        The remaining-faults budget lives here, not in the returned
        closure's caller: ``SolveService`` re-invokes its
        ``session_fault_hook`` factory for every restarted incarnation,
        and handing back this same hook keeps the budget shared — after
        ``times`` kills the hook goes inert and the restart can finish.
        """
        if times < 0:
            raise ValueError("times must be >= 0")
        remaining = [times]

        def hook(step: int) -> None:
            with self._lock:
                if remaining[0] <= 0 or step < at_step:
                    return
                remaining[0] -= 1
                self.fired.append(("session-kill", step))
            raise SimulatedFault(f"injected session kill at step {step}")

        return hook

    # ------------------------------------------------------------------ #
    #  snapshot damage
    # ------------------------------------------------------------------ #
    @staticmethod
    def truncate_file(path: Union[str, Path], at_byte: int) -> int:
        """Cut ``path`` to its first ``at_byte`` bytes (a crashed writer).

        Returns the number of bytes removed.
        """
        path = Path(path)
        data = path.read_bytes()
        if not 0 <= at_byte < len(data):
            raise ValueError(f"at_byte must be in [0, {len(data)}), got {at_byte}")
        path.write_bytes(data[:at_byte])
        return len(data) - at_byte

    def corrupt_file(self, path: Union[str, Path]) -> int:
        """Flip one seeded-random byte of ``path``; returns its offset."""
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            raise ValueError(f"{path} is empty")
        with self._lock:
            offset = self._rng.randrange(len(data))
            mask = self._rng.randrange(1, 256)
        data[offset] ^= mask
        path.write_bytes(bytes(data))
        self._record("corrupt-byte", offset)
        return offset
