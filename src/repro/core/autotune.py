"""Runtime pool-size auto-tuning.

The paper's conclusion notes that "the pool size that enables to achieve the
best acceleration ... depends strongly on the size of the problem instance
being solved.  Therefore, this parameter has to be determined at runtime by
testing different pool sizes."  This module implements that follow-up: the
:class:`PoolSizeAutotuner` evaluates a few candidate pool sizes — either
analytically through the simulator + CPU cost model, or empirically by
timing real off-loads — and selects the one with the best predicted
speed-up (equivalently, the smallest time per bounded node).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.core.config import GpuBBConfig, PAPER_POOL_SIZES
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.gpu.executor import GpuExecutor
from repro.gpu.simulator import GpuSimulator
from repro.perf.model import CpuCostModel

__all__ = ["AutotuneReport", "PoolSizeAutotuner"]


@dataclass(frozen=True)
class AutotuneSample:
    """Evaluation of one candidate pool size."""

    pool_size: int
    per_node_s: float
    predicted_speedup: float


@dataclass(frozen=True)
class AutotuneReport:
    """Outcome of an auto-tuning session."""

    best_pool_size: int
    samples: tuple[AutotuneSample, ...]
    mode: str

    def as_rows(self) -> list[dict[str, float | int]]:
        return [
            {
                "pool_size": s.pool_size,
                "per_node_us": s.per_node_s * 1e6,
                "predicted_speedup": s.predicted_speedup,
            }
            for s in self.samples
        ]


class PoolSizeAutotuner:
    """Choose the off-load pool size for an instance at runtime.

    Parameters
    ----------
    instance:
        The instance about to be solved.
    config:
        Base configuration; its pool size is the fallback when no candidate
        wins, and its placement/device/cost-model are reused for the trials.
    candidates:
        Pool sizes to evaluate (default: the paper's sweep).
    mode:
        ``"model"`` ranks candidates with the analytical simulator + CPU
        cost model (fast, deterministic); ``"measure"`` times real batched
        evaluations of synthetic pools on this host.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        config: GpuBBConfig | None = None,
        candidates: Sequence[int] = PAPER_POOL_SIZES,
        mode: Literal["model", "measure"] = "model",
        cpu_model: CpuCostModel | None = None,
    ):
        if not candidates:
            raise ValueError("at least one candidate pool size is required")
        if mode not in ("model", "measure"):
            raise ValueError("mode must be 'model' or 'measure'")
        self.instance = instance
        self.config = config if config is not None else GpuBBConfig()
        self.candidates = tuple(int(c) for c in candidates)
        if any(c < 1 for c in self.candidates):
            raise ValueError("pool sizes must be positive")
        self.mode = mode
        self.cpu_model = cpu_model if cpu_model is not None else CpuCostModel()
        self.data = LowerBoundData(instance)

    # ------------------------------------------------------------------ #
    def _model_samples(self) -> list[AutotuneSample]:
        from repro.core.mapping import recommend_placement

        placement = self.config.placement or recommend_placement(
            self.data.complexity, self.config.device, cost_model=self.config.cost_model
        )
        simulator = GpuSimulator(
            device=self.config.device, placement=placement, cost_model=self.config.cost_model
        )
        complexity = self.data.complexity
        samples = []
        for pool_size in self.candidates:
            timing = simulator.evaluate_pool(
                complexity, pool_size, threads_per_block=self.config.threads_per_block
            )
            cpu_s = self.cpu_model.pool_seconds(complexity, pool_size)
            samples.append(
                AutotuneSample(
                    pool_size=pool_size,
                    per_node_s=timing.per_node_s,
                    predicted_speedup=cpu_s / timing.total_s,
                )
            )
        return samples

    def _synthetic_pool(self, pool_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Build a synthetic pool of partial schedules of mixed depths."""
        rng = np.random.default_rng(pool_size)
        n, m = self.instance.n_jobs, self.instance.n_machines
        depth = max(1, min(n - 1, 3))
        mask = np.zeros((pool_size, n), dtype=bool)
        release = np.zeros((pool_size, m), dtype=np.int64)
        pt = self.instance.processing_times
        for i in range(pool_size):
            jobs = rng.choice(n, size=depth, replace=False)
            mask[i, jobs] = True
            front = np.zeros(m, dtype=np.int64)
            for job in jobs:
                prev = 0
                for k in range(m):
                    start = front[k] if front[k] > prev else prev
                    prev = start + pt[job, k]
                    front[k] = prev
            release[i] = front
        return mask, release

    def _measured_samples(self) -> list[AutotuneSample]:
        samples = []
        executor = GpuExecutor(
            self.data,
            device=self.config.device,
            placement=self.config.placement,
            cost_model=self.config.cost_model,
            threads_per_block=self.config.threads_per_block,
        )
        complexity = self.data.complexity
        for pool_size in self.candidates:
            mask, release = self._synthetic_pool(pool_size)
            start = time.perf_counter()
            executor.evaluate(mask, release)
            elapsed = time.perf_counter() - start
            cpu_s = self.cpu_model.pool_seconds(complexity, pool_size)
            per_node = elapsed / pool_size
            samples.append(
                AutotuneSample(
                    pool_size=pool_size,
                    per_node_s=per_node,
                    predicted_speedup=cpu_s / max(elapsed, 1e-12),
                )
            )
        return samples

    # ------------------------------------------------------------------ #
    def run(self) -> AutotuneReport:
        """Evaluate the candidates and return the report."""
        samples = self._model_samples() if self.mode == "model" else self._measured_samples()
        best = max(samples, key=lambda s: s.predicted_speedup)
        return AutotuneReport(best_pool_size=best.pool_size, samples=tuple(samples), mode=self.mode)

    def tuned_config(self) -> GpuBBConfig:
        """The base configuration with the winning pool size applied."""
        report = self.run()
        return self.config.with_pool_size(report.best_pool_size)
