"""GPU-accelerated Branch-and-Bound (the paper's Figure 3 architecture).

The control flow follows the paper exactly:

1. The CPU keeps the pool of pending sub-problems (best-first order) and the
   incumbent (upper bound).
2. Each iteration, the *selection* operator takes up to ``pool_size`` nodes
   from the pool and the *branching* operator decomposes them into children.
3. The children are packed into device buffers and off-loaded to the
   (simulated) GPU where the bounding kernel evaluates one lower bound per
   thread.
4. The bounds travel back to the CPU, where the *elimination* operator
   prunes children whose bound cannot improve the incumbent; complete
   schedules update the incumbent; survivors re-enter the pool.
5. Repeat until the pool is empty (optimality proven) or a budget is hit.

That iteration is :class:`~repro.bb.driver.SearchDriver` in its batch
shape; :class:`GpuBranchAndBound` configures it with the executor off-load
and an ``on_iteration`` hook that records the per-launch accounting.  With
``config.double_buffer`` the driver additionally credits the overlap of
host-side selection+branching of batch N+1 with the device bounding of
batch N (the ROADMAP's pipelined off-load).

Because the executor's batched kernel returns exactly the same values as the
scalar bound, the tree explored by this engine is the same as the serial
engine's (up to tie-breaking order), which is the property the paper relies
on when comparing ``T_cpu`` and ``T_gpu`` over the same node set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.bb.driver import OffloadStep, SearchDriver, SearchHooks, SearchLimits
from repro.bb.frontier import BlockFrontier, NodeBlock, Trail, root_block
from repro.bb.node import Node, root_node
from repro.bb.operators import encode_pool
from repro.bb.pool import make_pool
from repro.bb.sequential import BBResult
from repro.bb.stats import SearchStats
from repro.core.config import GpuBBConfig
from repro.core.kernels import KernelLaunch
from repro.core.mapping import recommend_placement
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.gpu.executor import GpuExecutor

__all__ = ["GpuBranchAndBound", "GpuBBResult", "IterationRecord"]


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration accounting (one off-loaded pool)."""

    iteration: int
    launch: KernelLaunch
    nodes_offloaded: int
    nodes_pruned: int
    nodes_kept: int
    incumbent: float
    simulated_device_s: float
    measured_host_s: float


@dataclass
class GpuBBResult(BBResult):
    """Result of a GPU-accelerated run, with device-side accounting."""

    iterations: list[IterationRecord] = field(default_factory=list)
    simulated_device_time_s: float = 0.0
    measured_kernel_time_s: float = 0.0
    #: simulated seconds saved by the double-buffered off-load model
    #: (0 unless ``config.double_buffer`` was enabled; renamed from
    #: ``overlap_saved_s``, which survives as a deprecated alias)
    overlap_saved_sim_s: float = 0.0
    #: measured wall seconds hidden by the ``overlap="async"`` two-slot
    #: pipeline (0 in synchronous mode)
    overlap_saved_wall_s: float = 0.0
    config: Optional[GpuBBConfig] = None

    @property
    def overlap_saved_s(self) -> float:
        """Deprecated alias of :attr:`overlap_saved_sim_s`."""
        return self.overlap_saved_sim_s

    def simulated_speedup(self, serial_seconds: float) -> float:
        """Speed-up of the simulated device time over a serial reference."""
        if self.simulated_device_time_s <= 0:
            raise ValueError("no simulated device time recorded")
        return serial_seconds / self.simulated_device_time_s


class _ExecutorOffload:
    """Driver bounding backend delegating to the engine's executor."""

    def __init__(self, engine: "GpuBranchAndBound"):
        self._engine = engine

    def bound_nodes(self, nodes: Sequence[Node]) -> tuple[np.ndarray, float, float]:
        return self._engine._offload(nodes)

    def bound_block(
        self, block: NodeBlock, siblings: bool = False
    ) -> tuple[np.ndarray, float, float]:
        return self._engine._offload_block(block)


def iteration_recorder(
    iterations: list[IterationRecord], threads_per_block: int
):
    """An ``on_iteration`` hook appending :class:`IterationRecord` entries."""

    def record(step: OffloadStep) -> None:
        iterations.append(
            IterationRecord(
                iteration=step.iteration,
                launch=KernelLaunch(step.nodes_offloaded, threads_per_block),
                nodes_offloaded=step.nodes_offloaded,
                nodes_pruned=step.nodes_pruned,
                nodes_kept=step.nodes_kept,
                incumbent=step.incumbent,
                simulated_device_s=step.simulated_s,
                measured_host_s=step.measured_s,
            )
        )

    return record


class GpuBranchAndBound:
    """Branch-and-Bound with GPU-off-loaded bounding.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    config:
        Execution configuration (pool size, block size, placement, budgets).

    Examples
    --------
    >>> from repro.flowshop import random_instance
    >>> from repro.core import GpuBBConfig, GpuBranchAndBound
    >>> inst = random_instance(8, 4, seed=1)
    >>> result = GpuBranchAndBound(inst, GpuBBConfig(pool_size=64)).solve()
    >>> result.proved_optimal
    True
    """

    def __init__(self, instance: FlowShopInstance, config: GpuBBConfig | None = None):
        self.instance = instance
        config = config if config is not None else GpuBBConfig()
        self.data = LowerBoundData(instance)
        placement = config.placement
        if placement is None:
            placement = recommend_placement(
                self.data.complexity,
                config.device,
                cost_model=config.cost_model,
                threads_per_block=config.threads_per_block,
            )
        # keep the resolved placement visible in the configuration carried by results
        self.config = config.with_placement(placement)
        self.placement = placement
        self.executor = GpuExecutor(
            self.data,
            device=self.config.device,
            placement=placement,
            cost_model=self.config.cost_model,
            threads_per_block=self.config.threads_per_block,
            include_one_machine=self.config.include_one_machine_bound or instance.n_machines == 1,
            kernel=self.config.kernel,
        )

    # ------------------------------------------------------------------ #
    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        if not self.config.use_neh_upper_bound:
            return float("inf"), ()
        heuristic = neh_heuristic(self.instance)
        return float(heuristic.makespan), tuple(heuristic.order)

    def _offload(self, nodes: Sequence[Node]) -> tuple[np.ndarray, float, float]:
        """Evaluate a pool of nodes on the executor, writing bounds back."""
        mask, release = encode_pool(nodes, self.data.n_jobs, self.data.n_machines)
        result = self.executor.evaluate(mask, release)
        for node, value in zip(nodes, result.bounds):
            node.lower_bound = int(value)
        return result.bounds, result.simulated.total_s, result.measured_wall_s

    def _offload_block(self, block: NodeBlock) -> tuple[np.ndarray, float, float]:
        """Evaluate a block on the executor — its arrays ARE the device buffers."""
        result = self.executor.evaluate_block(block)
        return result.bounds, result.simulated.total_s, result.measured_wall_s

    def _driver(self, hooks: SearchHooks) -> SearchDriver:
        config = self.config
        return SearchDriver(
            self.instance,
            layout=config.layout,
            selection=config.selection,
            offload=_ExecutorOffload(self),
            batch_size=config.pool_size,
            limits=SearchLimits(
                max_nodes=config.max_nodes,
                max_time_s=config.max_time_s,
                max_iterations=config.max_iterations,
            ),
            hooks=hooks,
            double_buffer=config.double_buffer,
            overlap=config.overlap,
        )

    # ------------------------------------------------------------------ #
    def solve(self) -> GpuBBResult:
        """Run the GPU-accelerated search."""
        config = self.config
        instance = self.instance
        stats = SearchStats()
        iterations: list[IterationRecord] = []

        upper_bound, best_order = self._initial_incumbent()
        if best_order:
            stats.incumbent_updates += 1

        start = time.perf_counter()

        # Bound the root on the device (a pool of one) and seed the store.
        run_kwargs: dict[str, object] = {}
        if config.layout == "block":
            trail = Trail()
            store: object = BlockFrontier(
                instance.n_jobs,
                instance.n_machines,
                trail,
                strategy=config.selection,
                max_pending=config.max_frontier_nodes,
                frontier_index=config.frontier_index,
            )
            root = root_block(instance, trail)
            _, sim_s, wall_s = self._offload_block(root)
            root_survives = int(root.lower_bound[0]) < upper_bound
            if root_survives:
                store.push_block(root)
            run_kwargs = {"trail": trail, "next_order": 1}
        else:
            store = make_pool(config.selection)
            root = root_node(instance)
            _, sim_s, wall_s = self._offload([root])
            root_survives = root.lower_bound is not None and root.lower_bound < upper_bound
            if root_survives:
                store.push(root)
        stats.nodes_bounded += 1
        stats.pools_evaluated += 1
        if not root_survives:
            stats.nodes_pruned += 1

        hooks = SearchHooks(
            on_iteration=iteration_recorder(iterations, config.threads_per_block)
        )
        outcome = self._driver(hooks).run(
            store,
            upper_bound=upper_bound,
            best_order=best_order,
            stats=stats,
            start=start,
            **run_kwargs,
        )
        simulated_total = sim_s + outcome.simulated_s - outcome.overlap_saved_sim_s
        measured_kernel = wall_s + outcome.measured_s

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = store.max_size_seen
        stats.simulated_device_time_s = simulated_total

        if not outcome.best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; enable the NEH seed "
                "or provide a finite initial upper bound"
            )
        return GpuBBResult(
            instance=instance,
            best_makespan=int(outcome.upper_bound),
            best_order=tuple(outcome.best_order),
            proved_optimal=outcome.completed,
            stats=stats,
            iterations=iterations,
            simulated_device_time_s=simulated_total,
            measured_kernel_time_s=measured_kernel,
            overlap_saved_sim_s=outcome.overlap_saved_sim_s,
            overlap_saved_wall_s=outcome.overlap_saved_wall_s,
            config=config,
        )
