"""GPU-accelerated Branch-and-Bound (the paper's Figure 3 architecture).

The control flow of :class:`GpuBranchAndBound` follows the paper exactly:

1. The CPU keeps the pool of pending sub-problems (best-first order) and the
   incumbent (upper bound).
2. Each iteration, the *selection* operator takes up to ``pool_size`` nodes
   from the pool and the *branching* operator decomposes them into children.
3. The children are packed into device buffers and off-loaded to the
   (simulated) GPU where the bounding kernel evaluates one lower bound per
   thread.
4. The bounds travel back to the CPU, where the *elimination* operator
   prunes children whose bound cannot improve the incumbent; complete
   schedules update the incumbent; survivors re-enter the pool.
5. Repeat until the pool is empty (optimality proven) or a budget is hit.

Because the executor's batched kernel returns exactly the same values as the
scalar bound, the tree explored by this engine is the same as the serial
engine's (up to tie-breaking order), which is the property the paper relies
on when comparing ``T_cpu`` and ``T_gpu`` over the same node set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.bb.frontier import (
    BlockFrontier,
    NodeBlock,
    Trail,
    branch_block,
    leaf_improvements,
    root_block,
)
from repro.bb.node import Node, root_node
from repro.bb.operators import branch, eliminate, encode_pool, select_batch
from repro.bb.pool import make_pool
from repro.bb.sequential import BBResult
from repro.bb.stats import SearchStats
from repro.core.config import GpuBBConfig
from repro.core.kernels import KernelLaunch
from repro.core.mapping import recommend_placement
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.gpu.executor import GpuExecutor

__all__ = ["GpuBranchAndBound", "GpuBBResult", "IterationRecord"]


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration accounting (one off-loaded pool)."""

    iteration: int
    launch: KernelLaunch
    nodes_offloaded: int
    nodes_pruned: int
    nodes_kept: int
    incumbent: float
    simulated_device_s: float
    measured_host_s: float


@dataclass
class GpuBBResult(BBResult):
    """Result of a GPU-accelerated run, with device-side accounting."""

    iterations: list[IterationRecord] = field(default_factory=list)
    simulated_device_time_s: float = 0.0
    measured_kernel_time_s: float = 0.0
    config: Optional[GpuBBConfig] = None

    def simulated_speedup(self, serial_seconds: float) -> float:
        """Speed-up of the simulated device time over a serial reference."""
        if self.simulated_device_time_s <= 0:
            raise ValueError("no simulated device time recorded")
        return serial_seconds / self.simulated_device_time_s


class GpuBranchAndBound:
    """Branch-and-Bound with GPU-off-loaded bounding.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    config:
        Execution configuration (pool size, block size, placement, budgets).

    Examples
    --------
    >>> from repro.flowshop import random_instance
    >>> from repro.core import GpuBBConfig, GpuBranchAndBound
    >>> inst = random_instance(8, 4, seed=1)
    >>> result = GpuBranchAndBound(inst, GpuBBConfig(pool_size=64)).solve()
    >>> result.proved_optimal
    True
    """

    def __init__(self, instance: FlowShopInstance, config: GpuBBConfig | None = None):
        self.instance = instance
        config = config if config is not None else GpuBBConfig()
        self.data = LowerBoundData(instance)
        placement = config.placement
        if placement is None:
            placement = recommend_placement(
                self.data.complexity,
                config.device,
                cost_model=config.cost_model,
                threads_per_block=config.threads_per_block,
            )
        # keep the resolved placement visible in the configuration carried by results
        self.config = config.with_placement(placement)
        self.placement = placement
        self.executor = GpuExecutor(
            self.data,
            device=self.config.device,
            placement=placement,
            cost_model=self.config.cost_model,
            threads_per_block=self.config.threads_per_block,
            include_one_machine=self.config.include_one_machine_bound or instance.n_machines == 1,
            kernel=self.config.kernel,
        )

    # ------------------------------------------------------------------ #
    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        if not self.config.use_neh_upper_bound:
            return float("inf"), ()
        heuristic = neh_heuristic(self.instance)
        return float(heuristic.makespan), tuple(heuristic.order)

    def _offload(self, nodes: Sequence[Node]) -> tuple[np.ndarray, float, float]:
        """Evaluate a pool of nodes on the executor, writing bounds back."""
        mask, release = encode_pool(nodes, self.data.n_jobs, self.data.n_machines)
        result = self.executor.evaluate(mask, release)
        for node, value in zip(nodes, result.bounds):
            node.lower_bound = int(value)
        return result.bounds, result.simulated.total_s, result.measured_wall_s

    def _offload_block(self, block: NodeBlock) -> tuple[np.ndarray, float, float]:
        """Evaluate a block on the executor — its arrays ARE the device buffers."""
        result = self.executor.evaluate_block(block)
        return result.bounds, result.simulated.total_s, result.measured_wall_s

    # ------------------------------------------------------------------ #
    def solve(self) -> GpuBBResult:
        """Run the GPU-accelerated search."""
        if self.config.layout == "block":
            return self._solve_block()
        return self._solve_object()

    def _solve_object(self) -> GpuBBResult:
        """Object layout: per-node branching/elimination, heap-backed pool."""
        config = self.config
        instance = self.instance
        stats = SearchStats()
        iterations: list[IterationRecord] = []

        upper_bound, best_order = self._initial_incumbent()
        if best_order:
            stats.incumbent_updates += 1

        pool = make_pool(config.selection)
        simulated_total = 0.0
        measured_kernel = 0.0

        start = time.perf_counter()

        # Bound the root on the device (a pool of one) and seed the pool.
        root = root_node(instance)
        bounds, sim_s, wall_s = self._offload([root])
        simulated_total += sim_s
        measured_kernel += wall_s
        stats.nodes_bounded += 1
        stats.pools_evaluated += 1
        if root.lower_bound is not None and root.lower_bound < upper_bound:
            pool.push(root)
        else:
            stats.nodes_pruned += 1

        iteration = 0
        completed = True
        while pool:
            if config.max_iterations is not None and iteration >= config.max_iterations:
                completed = False
                break
            if config.max_nodes is not None and stats.nodes_explored >= config.max_nodes:
                completed = False
                break
            if config.max_time_s is not None and time.perf_counter() - start > config.max_time_s:
                completed = False
                break
            iteration += 1

            # --- selection -------------------------------------------------
            t0 = time.perf_counter()
            parents, lazily_pruned = select_batch(pool, config.pool_size, upper_bound)
            stats.time_pool_s += time.perf_counter() - t0
            stats.nodes_pruned += lazily_pruned
            if not parents:
                break

            # --- branching (CPU) --------------------------------------------
            t0 = time.perf_counter()
            children: list[Node] = []
            for parent in parents:
                offspring = branch(parent, instance)
                stats.nodes_branched += 1
                children.extend(offspring)
            stats.time_branching_s += time.perf_counter() - t0

            if not children:
                continue

            # --- bounding (GPU off-load) ------------------------------------
            t0 = time.perf_counter()
            bounds, sim_s, wall_s = self._offload(children)
            stats.time_bounding_s += time.perf_counter() - t0
            simulated_total += sim_s
            measured_kernel += wall_s
            stats.nodes_bounded += len(children)
            stats.pools_evaluated += 1

            # --- incumbent updates from complete schedules -------------------
            open_children: list[Node] = []
            for child in children:
                if child.is_leaf:
                    stats.leaves_evaluated += 1
                    makespan = int(child.release[-1])
                    if makespan < upper_bound:
                        upper_bound = float(makespan)
                        best_order = child.prefix
                        stats.incumbent_updates += 1
                else:
                    open_children.append(child)

            # --- elimination --------------------------------------------------
            survivors, pruned = eliminate(open_children, upper_bound)
            stats.nodes_pruned += pruned

            t0 = time.perf_counter()
            pool.push_many(survivors)
            stats.time_pool_s += time.perf_counter() - t0

            iterations.append(
                IterationRecord(
                    iteration=iteration,
                    launch=KernelLaunch(len(children), config.threads_per_block),
                    nodes_offloaded=len(children),
                    nodes_pruned=pruned,
                    nodes_kept=len(survivors),
                    incumbent=upper_bound,
                    simulated_device_s=sim_s,
                    measured_host_s=wall_s,
                )
            )

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = pool.max_size_seen
        stats.simulated_device_time_s = simulated_total

        if not best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; enable the NEH seed "
                "or provide a finite initial upper bound"
            )
        return GpuBBResult(
            instance=instance,
            best_makespan=int(upper_bound),
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
            iterations=iterations,
            simulated_device_time_s=simulated_total,
            measured_kernel_time_s=measured_kernel,
            config=config,
        )

    # ------------------------------------------------------------------ #
    def _solve_block(self) -> GpuBBResult:
        """Block layout: selection, branching and elimination as array programs.

        The iteration structure, explored tree and every statistic mirror
        :meth:`_solve_object` exactly; the off-loaded buffers are the
        block's own arrays, so no per-node packing happens anywhere.
        """
        config = self.config
        instance = self.instance
        pt = instance.processing_times
        n_jobs = instance.n_jobs
        stats = SearchStats()
        iterations: list[IterationRecord] = []

        upper_bound, best_order = self._initial_incumbent()
        if best_order:
            stats.incumbent_updates += 1
        best_trail: Optional[int] = None

        trail = Trail()
        frontier = BlockFrontier(
            n_jobs, instance.n_machines, trail, strategy=config.selection
        )
        simulated_total = 0.0
        measured_kernel = 0.0

        start = time.perf_counter()

        # Bound the root on the device (a pool of one) and seed the frontier.
        root = root_block(instance, trail)
        next_order = 1
        bounds, sim_s, wall_s = self._offload_block(root)
        simulated_total += sim_s
        measured_kernel += wall_s
        stats.nodes_bounded += 1
        stats.pools_evaluated += 1
        if int(root.lower_bound[0]) < upper_bound:
            frontier.push_block(root)
        else:
            stats.nodes_pruned += 1

        iteration = 0
        completed = True
        while frontier:
            if config.max_iterations is not None and iteration >= config.max_iterations:
                completed = False
                break
            if config.max_nodes is not None and stats.nodes_explored >= config.max_nodes:
                completed = False
                break
            if config.max_time_s is not None and time.perf_counter() - start > config.max_time_s:
                completed = False
                break
            iteration += 1

            # --- selection -------------------------------------------------
            t0 = time.perf_counter()
            parents, lazily_pruned = frontier.pop_batch(config.pool_size, upper_bound)
            stats.time_pool_s += time.perf_counter() - t0
            stats.nodes_pruned += lazily_pruned
            if not len(parents):
                break

            # --- branching (CPU, vectorized) --------------------------------
            t0 = time.perf_counter()
            children = branch_block(parents, pt, next_order)
            stats.time_branching_s += time.perf_counter() - t0
            next_order += len(children)
            stats.nodes_branched += len(parents)

            if not len(children):
                continue

            # --- bounding (GPU off-load, zero re-packing) -------------------
            t0 = time.perf_counter()
            bounds, sim_s, wall_s = self._offload_block(children)
            stats.time_bounding_s += time.perf_counter() - t0
            simulated_total += sim_s
            measured_kernel += wall_s
            stats.nodes_bounded += len(children)
            stats.pools_evaluated += 1

            # --- incumbent updates from complete schedules -------------------
            leaf_mask = children.depth == n_jobs
            n_leaves = int(np.count_nonzero(leaf_mask))
            if n_leaves:
                leaf_rows = np.flatnonzero(leaf_mask)
                stats.leaves_evaluated += n_leaves
                makespans = children.release[leaf_rows, -1]
                improving, _ = leaf_improvements(upper_bound, makespans)
                for i in improving:
                    upper_bound = float(makespans[i])
                    best_trail = int(children.trail_id[leaf_rows[i]])
                    stats.incumbent_updates += 1

            # --- elimination fused with insertion (one masked append) ---------
            keep = children.lower_bound < upper_bound
            if n_leaves:
                keep &= ~leaf_mask
            kept = int(np.count_nonzero(keep))
            pruned = len(children) - n_leaves - kept
            stats.nodes_pruned += pruned

            t0 = time.perf_counter()
            frontier.push_block(children, keep)
            stats.time_pool_s += time.perf_counter() - t0

            iterations.append(
                IterationRecord(
                    iteration=iteration,
                    launch=KernelLaunch(len(children), config.threads_per_block),
                    nodes_offloaded=len(children),
                    nodes_pruned=pruned,
                    nodes_kept=kept,
                    incumbent=upper_bound,
                    simulated_device_s=sim_s,
                    measured_host_s=wall_s,
                )
            )

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = frontier.max_size_seen
        stats.simulated_device_time_s = simulated_total

        if best_trail is not None:
            best_order = trail.prefix(best_trail)
        if not best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; enable the NEH seed "
                "or provide a finite initial upper bound"
            )
        return GpuBBResult(
            instance=instance,
            best_makespan=int(upper_bound),
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
            iterations=iterations,
            simulated_device_time_s=simulated_total,
            measured_kernel_time_s=measured_kernel,
            config=config,
        )
