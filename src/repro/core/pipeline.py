"""Hybrid multi-core + GPU Branch-and-Bound (the paper's stated next step).

The conclusion of the paper announces work on "the combination of the
GPU-based bounding model with the multi-core parallel search tree
exploration".  This module provides that combination for the reproduction:

* the instance's root is decomposed into several independent sub-trees
  (exactly like :class:`~repro.bb.multicore.MulticoreBranchAndBound`);
* each sub-tree is explored by a :class:`~repro.core.gpu_bb.GpuBranchAndBound`
  engine that off-loads its bounding pools to the shared simulated device;
* incumbents found by earlier sub-trees seed the later ones, so pruning
  information flows between explorers (a cooperative search).

Because the simulated device serialises kernel launches, the hybrid engine
models a single GPU shared by several CPU explorer threads — the device time
is accumulated across explorers while the host-side exploration is assumed
to overlap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bb.driver import SearchDriver, SearchHooks, SearchLimits
from repro.bb.frontier import BlockFrontier, Trail, seed_block
from repro.bb.node import root_node
from repro.bb.pool import make_pool
from repro.bb.stats import SearchStats
from repro.core.config import GpuBBConfig
from repro.core.gpu_bb import (
    GpuBranchAndBound,
    GpuBBResult,
    IterationRecord,
    _ExecutorOffload,
    iteration_recorder,
)
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic

__all__ = ["HybridConfig", "HybridBranchAndBound"]


@dataclass(frozen=True)
class HybridConfig:
    """Configuration of the hybrid multi-core + GPU engine.

    The embedded :class:`~repro.core.config.GpuBBConfig` (``gpu``) carries
    every device-side knob, including the ``kernel`` revision selector
    (``"v1"`` / ``"v2"``) that each explorer's executor uses for its
    bounding launches.
    """

    #: number of CPU explorer "threads" (sub-tree owners)
    n_explorers: int = 2
    #: depth of the initial decomposition (>=1)
    decomposition_depth: int = 1
    #: configuration shared by every explorer's GPU engine
    gpu: GpuBBConfig = field(default_factory=GpuBBConfig)

    def __post_init__(self) -> None:
        if self.n_explorers < 1:
            raise ValueError("n_explorers must be >= 1")
        if self.decomposition_depth < 1:
            raise ValueError("decomposition_depth must be >= 1")


class HybridBranchAndBound:
    """Cooperative multi-explorer search with GPU-off-loaded bounding."""

    def __init__(self, instance: FlowShopInstance, config: HybridConfig | None = None):
        self.instance = instance
        self.config = config if config is not None else HybridConfig()

    # ------------------------------------------------------------------ #
    def _prefixes(self) -> list[tuple[int, ...]]:
        depth = min(self.config.decomposition_depth, self.instance.n_jobs)
        prefixes: list[tuple[int, ...]] = [()]
        for _ in range(depth):
            extended = []
            for prefix in prefixes:
                used = set(prefix)
                for job in range(self.instance.n_jobs):
                    if job not in used:
                        extended.append(prefix + (job,))
            prefixes = extended
        return prefixes

    def _restrict_instance(self, prefix: tuple[int, ...]) -> FlowShopInstance:
        """The sub-tree under ``prefix`` is explored as a first-jobs-fixed search.

        Rather than specialising the engine, the hybrid search keeps the full
        instance and forces the prefix by construction: it relies on
        :class:`GpuBranchAndBound` honouring an initial pool seeded below the
        prefix.  This helper exists for clarity and future extension.
        """
        return self.instance

    # ------------------------------------------------------------------ #
    def solve(self) -> GpuBBResult:
        """Explore the decomposed sub-trees cooperatively."""
        start = time.perf_counter()
        incumbent = neh_heuristic(self.instance)
        best_makespan = incumbent.makespan
        best_order = tuple(incumbent.order)
        launch_makespan = best_makespan

        prefixes = self._prefixes()
        # round-robin assignment of sub-trees to explorers (kept for reporting)
        assignments: dict[int, list[tuple[int, ...]]] = {
            e: [] for e in range(self.config.n_explorers)
        }
        for index, prefix in enumerate(prefixes):
            assignments[index % self.config.n_explorers].append(prefix)

        stats = SearchStats()
        simulated_total = 0.0
        measured_total = 0.0
        overlap_sim_total = 0.0
        overlap_wall_total = 0.0
        proved = True
        all_iterations = []

        share_incumbent = self.config.gpu.share_incumbent
        for explorer, owned in assignments.items():
            for prefix in owned:
                # Cooperative mode seeds each sub-tree with the best bound
                # found so far; independent mode replays the launch-time one.
                seed_bound = best_makespan if share_incumbent else launch_makespan
                sub_result = self._solve_subtree(prefix, seed_bound)
                stats = stats.merge(sub_result.stats)
                simulated_total += sub_result.simulated_device_time_s
                measured_total += sub_result.measured_kernel_time_s
                overlap_sim_total += sub_result.overlap_saved_sim_s
                overlap_wall_total += sub_result.overlap_saved_wall_s
                proved = proved and sub_result.proved_optimal
                all_iterations.extend(sub_result.iterations)
                if sub_result.best_order and sub_result.best_makespan < best_makespan:
                    best_makespan = sub_result.best_makespan
                    best_order = sub_result.best_order

        stats.time_total_s = time.perf_counter() - start
        stats.simulated_device_time_s = simulated_total
        return GpuBBResult(
            instance=self.instance,
            best_makespan=int(best_makespan),
            best_order=best_order,
            proved_optimal=proved,
            stats=stats,
            iterations=all_iterations,
            simulated_device_time_s=simulated_total,
            measured_kernel_time_s=measured_total,
            overlap_saved_sim_s=overlap_sim_total,
            overlap_saved_wall_s=overlap_wall_total,
            config=self.config.gpu,
        )

    # ------------------------------------------------------------------ #
    def _solve_subtree(self, prefix: tuple[int, ...], upper_bound: float) -> GpuBBResult:
        """Solve one sub-tree with a GPU engine seeded below ``prefix``.

        Always returns a result so device time and statistics are accounted
        for even when the sub-tree cannot improve the shared incumbent (its
        ``best_order`` is then empty).
        """
        engine = GpuBranchAndBound(self.instance, self.config.gpu)
        if self.config.gpu.layout == "block":
            trail = Trail()
            seed = seed_block(self.instance, prefix, trail)
            bounds, sim_s, wall_s = engine._offload_block(seed)
            is_leaf = int(seed.depth[0]) == self.instance.n_jobs
            seed_lb = int(seed.lower_bound[0])
            seed_prefix = prefix
            seed_makespan = int(seed.release[0, -1])
        else:
            # Seed the engine's pool with the prefix node instead of the root.
            node = root_node(self.instance)
            for job in prefix:
                node = node.child(job, self.instance.processing_times)
            bounds, sim_s, wall_s = engine._offload([node])
            is_leaf = node.is_leaf
            seed_lb = node.lower_bound if node.lower_bound is not None else -1
            seed_prefix = node.prefix
            seed_makespan = int(node.release[-1])

        # Bound the seed; skip the whole sub-tree if it cannot improve.
        if is_leaf:
            improved = seed_makespan < upper_bound
            return GpuBBResult(
                instance=self.instance,
                best_makespan=seed_makespan if improved else int(upper_bound),
                best_order=tuple(seed_prefix) if improved else (),
                proved_optimal=True,
                stats=SearchStats(nodes_bounded=1, leaves_evaluated=1),
                simulated_device_time_s=sim_s,
                measured_kernel_time_s=wall_s,
                config=self.config.gpu,
            )
        if seed_lb >= 0 and seed_lb >= upper_bound:
            return GpuBBResult(
                instance=self.instance,
                best_makespan=int(upper_bound),
                best_order=(),
                proved_optimal=True,
                stats=SearchStats(nodes_bounded=1, nodes_pruned=1),
                simulated_device_time_s=sim_s,
                measured_kernel_time_s=wall_s,
                config=self.config.gpu,
            )

        # Explore the sub-tree with a dedicated engine starting from the seed
        # node and from the shared incumbent.
        if self.config.gpu.layout == "block":
            result = _solve_from_seed_block(engine, seed, trail, float(upper_bound))
        else:
            result = _solve_from_seed(engine, node, float(upper_bound))
        result.simulated_device_time_s += sim_s
        result.measured_kernel_time_s += wall_s
        result.stats.simulated_device_time_s = result.simulated_device_time_s
        return result


def _seed_search(
    engine: GpuBranchAndBound,
    store,
    upper_bound: float,
    *,
    trail: Trail | None = None,
    next_order: int = 1,
) -> GpuBBResult:
    """Run the batch-shape driver from an already-seeded pool/frontier.

    The seed node was bounded (and its device time charged) by the caller;
    the only budget the sub-tree exploration honours is
    ``config.max_iterations`` — exactly the historical hybrid behaviour.
    """
    config = engine.config
    instance = engine.instance
    stats = SearchStats()
    iterations: list[IterationRecord] = []
    start = time.perf_counter()
    stats.nodes_bounded += 1

    driver = SearchDriver(
        instance,
        layout=config.layout,
        selection=config.selection,
        offload=_ExecutorOffload(engine),
        batch_size=config.pool_size,
        limits=SearchLimits(max_iterations=config.max_iterations),
        hooks=SearchHooks(
            on_iteration=iteration_recorder(iterations, config.threads_per_block)
        ),
        double_buffer=config.double_buffer,
        overlap=config.overlap,
    )
    run_kwargs: dict[str, object] = {}
    if trail is not None:
        run_kwargs = {"trail": trail, "next_order": next_order}
    outcome = driver.run(
        store,
        upper_bound=upper_bound,
        best_order=(),
        stats=stats,
        start=start,
        **run_kwargs,
    )
    simulated_total = outcome.simulated_s - outcome.overlap_saved_sim_s
    stats.time_total_s = time.perf_counter() - start
    stats.max_pool_size = store.max_size_seen
    stats.simulated_device_time_s = simulated_total
    return GpuBBResult(
        instance=instance,
        best_makespan=int(outcome.upper_bound),
        best_order=tuple(outcome.best_order),
        proved_optimal=outcome.completed,
        stats=stats,
        iterations=iterations,
        simulated_device_time_s=simulated_total,
        measured_kernel_time_s=outcome.measured_s,
        overlap_saved_sim_s=outcome.overlap_saved_sim_s,
        overlap_saved_wall_s=outcome.overlap_saved_wall_s,
        config=config,
    )


def _solve_from_seed(engine: GpuBranchAndBound, seed, upper_bound: float) -> GpuBBResult:
    """Run ``engine`` starting from ``seed`` instead of the instance root."""
    pool = make_pool(engine.config.selection)
    pool.push(seed)
    return _seed_search(engine, pool, upper_bound)


def _solve_from_seed_block(
    engine: GpuBranchAndBound, seed, trail: Trail, upper_bound: float
) -> GpuBBResult:
    """Block-layout twin of :func:`_solve_from_seed`.

    ``seed`` is a one-row :class:`~repro.bb.frontier.NodeBlock` produced by
    :func:`~repro.bb.frontier.seed_block` (already bounded by the caller).
    """
    config = engine.config
    instance = engine.instance
    frontier = BlockFrontier(
        instance.n_jobs,
        instance.n_machines,
        trail,
        strategy=config.selection,
        max_pending=config.max_frontier_nodes,
        frontier_index=config.frontier_index,
    )
    frontier.push_block(seed)
    next_order = int(seed.order_index[0]) + 1
    return _seed_search(engine, frontier, upper_bound, trail=trail, next_order=next_order)
