"""Data-access-optimisation analysis (the reasoning behind Table I).

Given an instance size and a device, rank the candidate placements of the
six lower-bound data structures by the kernel cost predicted by the
simulator.  This is the programmatic version of the paper's Section III-B /
IV-B argument:

* ``RM``, ``QM`` and ``MM`` are tiny — where they live barely matters;
* ``JM`` and ``LM`` have the same access frequency, but ``JM`` is read for
  every job while ``LM`` only for the remaining ones, and ``LM`` is twice
  the byte size in the paper's packed layout — so ``JM`` wins the shared
  memory spot;
* ``PTM`` has the highest access count of all and is small — it joins
  ``JM`` in shared memory whenever both fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import DeviceSpec, TESLA_C2050
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.placement import DataPlacement
from repro.gpu.simulator import GpuSimulator, KernelCostModel

__all__ = ["PlacementAnalysis", "analyze_placements", "recommend_placement", "default_candidates"]


@dataclass(frozen=True)
class PlacementAnalysis:
    """Predicted cost of one placement for one instance size."""

    placement: DataPlacement
    fits: bool
    shared_bytes_per_block: int
    active_warps_per_sm: int
    limiting_factor: str
    per_thread_cycles: float

    @property
    def name(self) -> str:
        return self.placement.name or "custom"


def default_candidates() -> list[DataPlacement]:
    """The placements worth considering (paper's scenarios + ablations)."""
    return [
        DataPlacement.all_global(),
        DataPlacement.shared_ptm_jm(),
        DataPlacement.shared_structures(["JM"]),
        DataPlacement.shared_structures(["PTM"]),
        DataPlacement.shared_structures(["LM"]),
        DataPlacement.shared_structures(["PTM", "LM"]),
        DataPlacement.shared_structures(["JM", "LM"]),
    ]


def analyze_placements(
    complexity: DataStructureComplexity,
    device: DeviceSpec = TESLA_C2050,
    candidates: Sequence[DataPlacement] | None = None,
    cost_model: KernelCostModel | None = None,
    threads_per_block: int = 256,
) -> list[PlacementAnalysis]:
    """Rank candidate placements by predicted per-thread kernel cost.

    Placements that do not fit (their shared-memory demand exceeds the SM
    capacity) are still reported, flagged ``fits=False``, and sorted last.
    """
    if candidates is None:
        candidates = default_candidates()
    cost_model = cost_model if cost_model is not None else KernelCostModel()

    analyses: list[PlacementAnalysis] = []
    for placement in candidates:
        hierarchy = MemoryHierarchy(device, placement.cache_config)
        shared_needed = placement.shared_bytes_per_block(complexity)
        fits = placement.fits(complexity, hierarchy)
        simulator = GpuSimulator(device=device, placement=placement, cost_model=cost_model)
        if fits:
            occupancy = simulator.occupancy(complexity, threads_per_block)
            if occupancy.active_blocks_per_sm == 0:
                fits = False
        if fits:
            cycles = simulator.per_thread_cycles(complexity, occupancy)
            analyses.append(
                PlacementAnalysis(
                    placement=placement,
                    fits=True,
                    shared_bytes_per_block=shared_needed,
                    active_warps_per_sm=occupancy.active_warps_per_sm,
                    limiting_factor=occupancy.limiting_factor,
                    per_thread_cycles=cycles,
                )
            )
        else:
            analyses.append(
                PlacementAnalysis(
                    placement=placement,
                    fits=False,
                    shared_bytes_per_block=shared_needed,
                    active_warps_per_sm=0,
                    limiting_factor="does_not_fit",
                    per_thread_cycles=float("inf"),
                )
            )
    analyses.sort(key=lambda a: (not a.fits, a.per_thread_cycles))
    return analyses


def recommend_placement(
    complexity: DataStructureComplexity,
    device: DeviceSpec = TESLA_C2050,
    cost_model: KernelCostModel | None = None,
    threads_per_block: int = 256,
) -> DataPlacement:
    """Best-fitting placement according to the simulator's cost ranking.

    Falls back to the all-global placement when nothing else fits (which is
    always valid).
    """
    analyses = analyze_placements(
        complexity, device, cost_model=cost_model, threads_per_block=threads_per_block
    )
    for analysis in analyses:
        if analysis.fits:
            return analysis.placement
    return DataPlacement.all_global()
