"""The paper's primary contribution: GPU-accelerated Branch-and-Bound.

* :mod:`~repro.core.config` — execution configuration (pool size, block
  size, placement policy, budgets).
* :mod:`~repro.core.kernels` — the bounding kernel in its scalar (per
  thread) and batched (per pool) forms plus pool encoding.
* :mod:`~repro.core.mapping` — the data-access-optimisation analysis: rank
  candidate placements for an instance size and device (Table I reasoning).
* :mod:`~repro.core.gpu_bb` — :class:`GpuBranchAndBound`, the CPU search
  loop with GPU-off-loaded bounding (Figure 3 of the paper).
* :mod:`~repro.core.autotune` — runtime pool-size tuning (the paper's
  stated follow-up: "this parameter has to be determined at runtime").
* :mod:`~repro.core.pipeline` — the hybrid multi-core + GPU variant the
  paper lists as work in progress.
"""

from repro.core.config import GpuBBConfig, PAPER_POOL_SIZES, PAPER_BLOCK_SIZE
from repro.core.kernels import (
    bounding_kernel,
    bounding_kernel_batch,
    encode_nodes,
    KernelLaunch,
)
from repro.core.mapping import PlacementAnalysis, analyze_placements, recommend_placement
from repro.core.gpu_bb import GpuBranchAndBound, GpuBBResult
from repro.core.autotune import PoolSizeAutotuner, AutotuneReport
from repro.core.pipeline import HybridBranchAndBound, HybridConfig
from repro.core.cluster import (
    ClusterSpec,
    ClusterSimulator,
    ClusterStepTiming,
    ClusterBranchAndBound,
)

__all__ = [
    "GpuBBConfig",
    "PAPER_POOL_SIZES",
    "PAPER_BLOCK_SIZE",
    "bounding_kernel",
    "bounding_kernel_batch",
    "encode_nodes",
    "KernelLaunch",
    "PlacementAnalysis",
    "analyze_placements",
    "recommend_placement",
    "GpuBranchAndBound",
    "GpuBBResult",
    "PoolSizeAutotuner",
    "AutotuneReport",
    "HybridBranchAndBound",
    "HybridConfig",
    "ClusterSpec",
    "ClusterSimulator",
    "ClusterStepTiming",
    "ClusterBranchAndBound",
]
