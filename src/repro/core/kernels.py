"""The bounding kernel.

On the real system this is the CUDA ``__global__`` function every thread of
the off-loaded pool executes (Figure 2 of the paper).  In the reproduction
the same computation exists in two forms:

* :func:`bounding_kernel` — the scalar, per-sub-problem form; a direct
  transcription of the paper's pseudo-code, used by the CPU engines and by
  the tests as the reference semantics.
* :func:`bounding_kernel_batch` — the batched form evaluating a whole pool
  with NumPy vectorisation; this is what the
  :class:`~repro.gpu.executor.GpuExecutor` runs and it returns values
  bit-identical to the scalar form.  Two revisions exist — ``"v1"``
  vectorises the pool axis only, ``"v2"`` additionally vectorises the
  machine-couple axis — selected by the ``kernel`` argument (and, one level
  up, by :attr:`~repro.core.config.GpuBBConfig.kernel`).

:func:`encode_nodes` packs a list of :class:`~repro.bb.node.Node` objects
into the flat arrays shipped to the device, and :class:`KernelLaunch`
describes one launch (grid geometry + pool) the way a CUDA launch
configuration would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bb.node import Node
from repro.bb.operators import encode_pool
from repro.flowshop.bounds import LowerBoundData, get_batch_kernel, lower_bound

__all__ = ["bounding_kernel", "bounding_kernel_batch", "encode_nodes", "KernelLaunch"]


def bounding_kernel(
    data: LowerBoundData,
    prefix: Sequence[int],
    release: np.ndarray | None = None,
    include_one_machine: bool = False,
) -> int:
    """Scalar bounding kernel: the lower bound of one sub-problem."""
    return lower_bound(data, prefix, release=release, include_one_machine=include_one_machine)


def bounding_kernel_batch(
    data: LowerBoundData,
    scheduled_mask: np.ndarray,
    release: np.ndarray,
    include_one_machine: bool = False,
    kernel: str = "v2",
) -> np.ndarray:
    """Batched bounding kernel: lower bounds of a whole pool at once.

    ``kernel`` selects the revision (``"v1"`` or ``"v2"``); both return
    bit-identical values, v2 with far fewer interpreter round-trips.
    """
    return get_batch_kernel(kernel)(
        data, scheduled_mask, release, include_one_machine=include_one_machine
    )


def encode_nodes(nodes: Sequence[Node], data: LowerBoundData) -> tuple[np.ndarray, np.ndarray]:
    """Pack nodes into ``(scheduled_mask, release)`` device buffers."""
    return encode_pool(nodes, data.n_jobs, data.n_machines)


@dataclass(frozen=True)
class KernelLaunch:
    """Launch geometry of one batched kernel invocation.

    Mirrors a CUDA ``<<<grid, block>>>`` configuration: ``n_blocks`` blocks
    of ``threads_per_block`` threads, the last block possibly partially
    filled.  The paper expresses pool sizes as ``blocks x threads/block``
    (e.g. ``1024 x 256 = 262144``).
    """

    pool_size: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")

    @property
    def n_blocks(self) -> int:
        return -(-self.pool_size // self.threads_per_block) if self.pool_size else 0

    @property
    def n_threads(self) -> int:
        """Total threads launched (idle threads of the last block included)."""
        return self.n_blocks * self.threads_per_block

    @property
    def idle_threads(self) -> int:
        """Threads of the last block with no sub-problem to evaluate."""
        return self.n_threads - self.pool_size

    def label(self) -> str:
        """The paper's ``blocks x threads`` notation, e.g. ``"1024x256"``."""
        return f"{self.n_blocks}x{self.threads_per_block}"
