"""Cluster of GPU-accelerated nodes (the paper's second future-work item).

The conclusion of the paper plans to "extend this work to a cluster of
GPU-accelerated multi-core processors".  This module provides that extension
for the reproduction:

* :class:`ClusterSpec` — a homogeneous cluster of nodes, each hosting one
  simulated GPU and a few CPU cores, connected by an interconnect with a
  latency/bandwidth cost (an MPI-like model, in the spirit of the
  mpi4py-based deployments such a system would use).
* :class:`ClusterSimulator` — distributes a pool of sub-problems over the
  nodes (block distribution), charges each node its local GPU time via
  :class:`~repro.gpu.simulator.GpuSimulator`, adds the scatter/gather
  communication and the coordinator-side merge, and reports the resulting
  makespan of the step (the slowest node) plus scaling efficiency.
* :class:`ClusterBranchAndBound` — a functional engine: the pool of children
  produced at every iteration is split across ``n_nodes`` executors (each
  evaluating its chunk with the exact batched kernel), so the search remains
  exact while the timing model captures the distribution overheads.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bb.driver import SearchDriver, SearchHooks, SearchLimits
from repro.bb.frontier import BlockFrontier, NodeBlock, Trail, root_block
from repro.bb.node import Node, root_node
from repro.bb.operators import encode_pool
from repro.bb.pool import make_pool
from repro.bb.stats import SearchStats
from repro.core.config import GpuBBConfig
from repro.core.gpu_bb import GpuBBResult, IterationRecord, iteration_recorder
from repro.core.mapping import recommend_placement
from repro.flowshop.bounds import DataStructureComplexity, LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.gpu.device import DeviceSpec, TESLA_C2050
from repro.gpu.executor import GpuExecutor
from repro.gpu.simulator import GpuSimulator, KernelCostModel

__all__ = ["ClusterSpec", "ClusterStepTiming", "ClusterSimulator", "ClusterBranchAndBound"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of GPU-accelerated nodes."""

    n_nodes: int = 4
    device: DeviceSpec = TESLA_C2050
    #: interconnect latency per message (seconds); ~MPI over InfiniBand
    interconnect_latency_s: float = 30e-6
    #: interconnect bandwidth (bytes per second); ~QDR InfiniBand effective rate
    interconnect_bandwidth_bps: float = 3.0e9
    #: per-node payload bytes per sub-problem shipped by the coordinator
    node_payload_bytes: int = 128
    #: coordinator-side cost to merge one node's results (seconds)
    merge_cost_per_node_s: float = 10e-6
    #: bytes of one incumbent-bound broadcast (the tightened upper bound)
    incumbent_broadcast_bytes: int = 8

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.interconnect_latency_s < 0 or self.interconnect_bandwidth_bps <= 0:
            raise ValueError("invalid interconnect parameters")

    def scatter_time_s(self, pool_size: int, payload_bytes: int | None = None) -> float:
        """Time to scatter a pool of sub-problems to the nodes.

        Each sub-problem is shipped exactly once, so the byte cost is
        ``pool_size * payload`` regardless of how the pool splits across the
        nodes (the last node's chunk may be short); only the per-message
        latency scales with the node count.
        """
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        payload = self.node_payload_bytes if payload_bytes is None else payload_bytes
        return self.n_nodes * self.interconnect_latency_s + (
            pool_size * payload / self.interconnect_bandwidth_bps
        )

    def incumbent_broadcast_time_s(self) -> float:
        """Time for one coordinator-to-nodes broadcast of a tightened bound.

        Charged once per incumbent improvement when the engines share the
        incumbent (one extra interconnect message carrying the new upper
        bound).
        """
        return self.interconnect_latency_s + (
            self.incumbent_broadcast_bytes / self.interconnect_bandwidth_bps
        )

    def gather_time_s(self, pool_size: int, result_bytes: int = 4) -> float:
        """Time to gather the lower bounds back to the coordinator."""
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        return (
            self.n_nodes * self.interconnect_latency_s
            + pool_size * result_bytes / self.interconnect_bandwidth_bps
            + self.n_nodes * self.merge_cost_per_node_s
        )


@dataclass(frozen=True)
class ClusterStepTiming:
    """Timing of one distributed bounding step."""

    pool_size: int
    n_nodes: int
    scatter_s: float
    gather_s: float
    node_compute_s: float  # slowest node's local GPU time
    per_node_pool: int

    @property
    def total_s(self) -> float:
        return self.scatter_s + self.gather_s + self.node_compute_s


class ClusterSimulator:
    """Analytical model of distributed pool bounding over a GPU cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        cost_model: KernelCostModel | None = None,
        threads_per_block: int = 256,
    ):
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else KernelCostModel()
        self.threads_per_block = threads_per_block

    def _node_simulator(self, complexity: DataStructureComplexity) -> GpuSimulator:
        placement = recommend_placement(complexity, self.cluster.device, cost_model=self.cost_model)
        return GpuSimulator(
            device=self.cluster.device, placement=placement, cost_model=self.cost_model
        )

    def evaluate_pool(
        self,
        complexity: DataStructureComplexity,
        pool_size: int,
        n_remaining: int | None = None,
    ) -> ClusterStepTiming:
        """Distributed evaluation of one pool of ``pool_size`` sub-problems."""
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        per_node = math.ceil(pool_size / self.cluster.n_nodes) if pool_size else 0
        simulator = self._node_simulator(complexity)
        if per_node:
            node_timing = simulator.evaluate_pool(
                complexity,
                per_node,
                threads_per_block=self.threads_per_block,
                n_remaining=n_remaining,
            )
            node_compute = node_timing.total_s
        else:
            node_compute = 0.0
        return ClusterStepTiming(
            pool_size=pool_size,
            n_nodes=self.cluster.n_nodes,
            scatter_s=self.cluster.scatter_time_s(pool_size),
            gather_s=self.cluster.gather_time_s(pool_size),
            node_compute_s=node_compute,
            per_node_pool=per_node,
        )

    def scaling_efficiency(
        self,
        complexity: DataStructureComplexity,
        pool_size: int,
        n_nodes_list: Sequence[int] = (1, 2, 4, 8, 16),
    ) -> dict[int, float]:
        """Speed-up over a single node for several cluster sizes.

        Efficiency is the classic ``speedup / n_nodes``; values close to 1
        mean near-linear scaling.  Small pools scale poorly (the scatter and
        gather latencies dominate), very large pools scale almost linearly —
        the same pool-size story as the single-GPU case, one level up.
        """
        reference_cluster = ClusterSpec(
            n_nodes=1,
            device=self.cluster.device,
            interconnect_latency_s=self.cluster.interconnect_latency_s,
            interconnect_bandwidth_bps=self.cluster.interconnect_bandwidth_bps,
            node_payload_bytes=self.cluster.node_payload_bytes,
            merge_cost_per_node_s=self.cluster.merge_cost_per_node_s,
        )
        reference = ClusterSimulator(reference_cluster, self.cost_model, self.threads_per_block)
        t1 = reference.evaluate_pool(complexity, pool_size).total_s
        efficiencies: dict[int, float] = {}
        for n_nodes in n_nodes_list:
            cluster = ClusterSpec(
                n_nodes=n_nodes,
                device=self.cluster.device,
                interconnect_latency_s=self.cluster.interconnect_latency_s,
                interconnect_bandwidth_bps=self.cluster.interconnect_bandwidth_bps,
                node_payload_bytes=self.cluster.node_payload_bytes,
                merge_cost_per_node_s=self.cluster.merge_cost_per_node_s,
            )
            simulator = ClusterSimulator(cluster, self.cost_model, self.threads_per_block)
            tn = simulator.evaluate_pool(complexity, pool_size).total_s
            efficiencies[n_nodes] = (t1 / tn) / n_nodes
        return efficiencies


class ClusterBranchAndBound:
    """Exact B&B whose bounding pools are distributed over a simulated cluster.

    The coordinator keeps the pending pool, selects/branches on the CPU, and
    splits every generated pool of children into ``n_nodes`` chunks, each
    evaluated by its own :class:`~repro.gpu.executor.GpuExecutor` (the exact
    batched kernel).  The simulated time of an iteration is the slowest
    node's device time plus the scatter/gather costs.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        cluster: ClusterSpec | None = None,
        config: GpuBBConfig | None = None,
    ):
        self.instance = instance
        self.cluster = cluster if cluster is not None else ClusterSpec()
        self.config = config if config is not None else GpuBBConfig()
        self.data = LowerBoundData(instance)
        placement = self.config.placement or recommend_placement(
            self.data.complexity, self.cluster.device, cost_model=self.config.cost_model
        )
        self.executors = [
            GpuExecutor(
                self.data,
                device=self.cluster.device,
                placement=placement,
                cost_model=self.config.cost_model,
                threads_per_block=self.config.threads_per_block,
                include_one_machine=instance.n_machines == 1,
                kernel=self.config.kernel,
            )
            for _ in range(self.cluster.n_nodes)
        ]

    # ------------------------------------------------------------------ #
    def _distributed_bound(self, children: list[Node]) -> tuple[float, float]:
        """Bound ``children`` across the nodes; returns (sim step time, wall time)."""
        chunks = np.array_split(np.arange(len(children)), self.cluster.n_nodes)
        slowest = 0.0
        wall = 0.0
        for executor, chunk in zip(self.executors, chunks):
            if chunk.size == 0:
                continue
            subset = [children[i] for i in chunk]
            mask, release = encode_pool(subset, self.data.n_jobs, self.data.n_machines)
            result = executor.evaluate(mask, release)
            for node, value in zip(subset, result.bounds):
                node.lower_bound = int(value)
            slowest = max(slowest, result.simulated.total_s)
            wall += result.measured_wall_s
        scatter = self.cluster.scatter_time_s(len(children))
        gather = self.cluster.gather_time_s(len(children))
        return scatter + slowest + gather, wall

    def _distributed_bound_block(self, children: NodeBlock) -> tuple[float, float]:
        """Bound a block across the nodes; each node reads its row slice.

        ``array_split`` chunks are contiguous row ranges, so every node's
        buffers are zero-copy views of the block — the scatter is free on
        the host side and only billed by the interconnect model.
        """
        total = len(children)
        chunks = np.array_split(np.arange(total), self.cluster.n_nodes)
        bounds = children.lower_bound
        slowest = 0.0
        wall = 0.0
        for executor, chunk in zip(self.executors, chunks):
            if chunk.size == 0:
                continue
            lo, hi = int(chunk[0]), int(chunk[-1]) + 1
            result = executor.evaluate(
                children.scheduled_mask[lo:hi], children.release[lo:hi]
            )
            bounds[lo:hi] = result.bounds
            slowest = max(slowest, result.simulated.total_s)
            wall += result.measured_wall_s
        scatter = self.cluster.scatter_time_s(total)
        gather = self.cluster.gather_time_s(total)
        return scatter + slowest + gather, wall

    def solve(self) -> GpuBBResult:
        """Run the distributed search to completion (or until a budget is hit).

        The iteration is the batch shape of
        :class:`~repro.bb.driver.SearchDriver`, configured with the
        distributed bounding off-load and an ``incumbent_charge_s`` hook
        that bills one coordinator-to-nodes broadcast per incumbent
        improvement when ``config.share_incumbent`` is set.
        """
        config = self.config
        instance = self.instance
        stats = SearchStats()
        iterations: list[IterationRecord] = []

        heuristic = neh_heuristic(instance)
        upper_bound = float(heuristic.makespan)
        best_order: tuple[int, ...] = tuple(heuristic.order)
        stats.incumbent_updates += 1

        start = time.perf_counter()

        run_kwargs: dict[str, object] = {}
        if config.layout == "block":
            trail = Trail()
            store: object = BlockFrontier(
                instance.n_jobs,
                instance.n_machines,
                trail,
                strategy=config.selection,
                max_pending=config.max_frontier_nodes,
                frontier_index=config.frontier_index,
            )
            root = root_block(instance, trail)
            sim_s, wall_s = self._distributed_bound_block(root)
            root_survives = int(root.lower_bound[0]) < upper_bound
            if root_survives:
                store.push_block(root)
            run_kwargs = {"trail": trail, "next_order": 1}
        else:
            store = make_pool(config.selection)
            root = root_node(instance)
            sim_s, wall_s = self._distributed_bound([root])
            root_survives = root.lower_bound is not None and root.lower_bound < upper_bound
            if root_survives:
                store.push(root)
        stats.nodes_bounded += 1
        stats.pools_evaluated += 1
        if not root_survives:
            stats.nodes_pruned += 1

        hooks = SearchHooks(
            on_iteration=iteration_recorder(iterations, config.threads_per_block),
        )
        if config.share_incumbent:
            # the coordinator broadcasts every tightened bound to the
            # nodes so their next local elimination uses it
            hooks.incumbent_charge_s = self.cluster.incumbent_broadcast_time_s
        driver = SearchDriver(
            instance,
            layout=config.layout,
            selection=config.selection,
            offload=_DistributedOffload(self),
            batch_size=config.pool_size,
            limits=SearchLimits(
                max_nodes=config.max_nodes, max_iterations=config.max_iterations
            ),
            hooks=hooks,
            double_buffer=config.double_buffer,
            overlap=config.overlap,
        )
        outcome = driver.run(
            store,
            upper_bound=upper_bound,
            best_order=best_order,
            stats=stats,
            start=start,
            **run_kwargs,
        )
        simulated_total = sim_s + outcome.simulated_s - outcome.overlap_saved_sim_s
        measured_total = wall_s + outcome.measured_s

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = store.max_size_seen
        stats.simulated_device_time_s = simulated_total
        return GpuBBResult(
            instance=instance,
            best_makespan=int(outcome.upper_bound),
            best_order=tuple(outcome.best_order),
            proved_optimal=outcome.completed,
            stats=stats,
            iterations=iterations,
            simulated_device_time_s=simulated_total,
            measured_kernel_time_s=measured_total,
            overlap_saved_sim_s=outcome.overlap_saved_sim_s,
            overlap_saved_wall_s=outcome.overlap_saved_wall_s,
            config=config,
        )


class _DistributedOffload:
    """Driver bounding backend splitting each pool across the cluster nodes."""

    def __init__(self, engine: ClusterBranchAndBound):
        self._engine = engine

    def bound_nodes(self, nodes: list[Node]) -> tuple[None, float, float]:
        sim_s, wall_s = self._engine._distributed_bound(nodes)
        return None, sim_s, wall_s

    def bound_block(
        self, block: NodeBlock, siblings: bool = False
    ) -> tuple[np.ndarray, float, float]:
        sim_s, wall_s = self._engine._distributed_bound_block(block)
        return block.lower_bound, sim_s, wall_s
