"""Execution configuration of the GPU-accelerated Branch-and-Bound."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.gpu.device import DeviceSpec, TESLA_C2050
from repro.gpu.placement import DataPlacement
from repro.gpu.simulator import KernelCostModel

__all__ = ["GpuBBConfig", "PAPER_POOL_SIZES", "PAPER_BLOCK_SIZE"]

#: The pool sizes swept by the paper's Tables II and III.
PAPER_POOL_SIZES: tuple[int, ...] = (4096, 8192, 16384, 32768, 65536, 131072, 262144)

#: The thread-block size the paper fixes experimentally.
PAPER_BLOCK_SIZE: int = 256


@dataclass(frozen=True)
class GpuBBConfig:
    """Configuration of one :class:`~repro.core.gpu_bb.GpuBranchAndBound` run.

    Parameters
    ----------
    pool_size:
        Maximum number of sub-problems off-loaded to the device per
        iteration (the paper's key tuning knob).
    threads_per_block:
        CUDA block size (the paper fixes 256).
    kernel:
        Batched bounding kernel revision: ``"v2"`` (default) vectorises the
        machine-couple axis as well as the pool axis and is several times
        faster per launch; ``"v1"`` is the original pool-only
        vectorisation, kept as the reference semantics.  Both return
        bit-identical bounds, so the explored tree never depends on this
        choice.
    placement:
        Data-structure placement; ``None`` selects the paper's
        recommendation for the instance size at solve time.
    device:
        Simulated device specification.
    cost_model:
        Calibration constants of the device timing model.
    selection:
        Host-side selection strategy for the pending pool.
    layout:
        Host-side node representation: ``"block"`` (default) runs the
        engine on structure-of-arrays batches (:mod:`repro.bb.frontier`) —
        branching/selection/elimination are vectorized and the bounding
        launches read the block arrays with zero re-packing;
        ``"object"`` is the one-``Node``-per-sub-problem pipeline, kept
        for the layout ablation.  Results, explored tree and node
        counters are identical in both layouts.
    share_incumbent:
        Propagate incumbent improvements between the parallel explorers.
        In the hybrid engine, disabling it seeds every sub-tree with the
        launch-time bound instead of the best found so far (still exact,
        more nodes explored).  In the cluster engine the coordinator-side
        search always uses the freshest bound — the flag only toggles the
        *cost accounting* of the broadcast that a real deployment would
        issue (one interconnect message per improvement, see
        :meth:`~repro.core.cluster.ClusterSpec.incumbent_broadcast_time_s`).
    use_neh_upper_bound:
        Seed the incumbent with the NEH heuristic.
    include_one_machine_bound:
        Forwarded to the lower bound kernel (only needed for ``m == 1``).
    max_nodes / max_time_s / max_iterations:
        Optional exploration budgets.
    max_frontier_nodes:
        Block layout only: high-water memory cap of the pending frontier.
        Once that many nodes are pending, best-first selection runs in a
        depth-first-restricted regime and — hysteretically — stays there
        until the frontier drains below the 0.8×cap low-water mark (see
        :class:`~repro.bb.frontier.BlockFrontier`), so exhaustive runs
        cannot grow the pool without bound and selection does not flap at
        the cap boundary.  ``None`` disables the cap.
    frontier_index:
        Block layout only: selection index of the pending frontier —
        ``"segmented"`` (default, cached per-segment key minima for
        sublinear best-first pops at large frontiers) or ``"linear"``
        (full-scan ablation).  Selection is bit-identical either way.
    double_buffer:
        Model the double-buffered off-load of the ROADMAP's pipelining
        follow-on: the host selects and branches batch N+1 while the device
        is still bounding batch N, so the overlapped host time is credited
        against the simulated device total.  The explored tree, results and
        counters are unaffected — only the simulated timing changes (the
        credit is reported as ``overlap_saved_sim_s`` on the result).
    overlap:
        ``"sync"`` (default) bounds on the driver thread; ``"async"``
        runs every offload launch on a dedicated worker thread behind the
        driver's two-slot pipeline, overlapping host-side selection and
        branching with bounding for real.  The explored tree, results and
        counters are bit-identical either way — only wall-clock changes;
        the hidden wall seconds are reported as ``overlap_saved_wall_s``
        on the result.  Orthogonal to ``double_buffer`` (which models the
        overlap in simulated time).
    """

    pool_size: int = 8192
    threads_per_block: int = PAPER_BLOCK_SIZE
    kernel: str = "v2"
    placement: Optional[DataPlacement] = None
    device: DeviceSpec = TESLA_C2050
    cost_model: KernelCostModel = field(default_factory=KernelCostModel)
    selection: str = "best-first"
    layout: str = "block"
    share_incumbent: bool = True
    use_neh_upper_bound: bool = True
    include_one_machine_bound: bool = False
    max_nodes: Optional[int] = None
    max_time_s: Optional[float] = None
    max_iterations: Optional[int] = None
    max_frontier_nodes: Optional[int] = None
    frontier_index: str = "segmented"
    double_buffer: bool = False
    overlap: str = "sync"

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.kernel not in ("v1", "v2"):
            raise ValueError(f"kernel must be 'v1' or 'v2', got {self.kernel!r}")
        if self.layout not in ("block", "object"):
            raise ValueError(f"layout must be 'block' or 'object', got {self.layout!r}")
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")
        if self.threads_per_block > self.device.max_threads_per_block:
            raise ValueError(
                f"threads_per_block ({self.threads_per_block}) exceeds the device "
                f"limit ({self.device.max_threads_per_block})"
            )
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError("max_nodes must be positive when given")
        if self.max_time_s is not None and self.max_time_s <= 0:
            raise ValueError("max_time_s must be positive when given")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be positive when given")
        if self.max_frontier_nodes is not None and self.max_frontier_nodes < 1:
            raise ValueError("max_frontier_nodes must be positive when given")
        if self.frontier_index not in ("segmented", "linear"):
            raise ValueError(
                f"frontier_index must be 'segmented' or 'linear', "
                f"got {self.frontier_index!r}"
            )
        if self.overlap not in ("sync", "async"):
            raise ValueError(
                f"overlap must be 'sync' or 'async', got {self.overlap!r}"
            )

    @property
    def blocks_per_pool(self) -> int:
        """Number of thread blocks a full pool occupies."""
        return -(-self.pool_size // self.threads_per_block)

    def with_pool_size(self, pool_size: int) -> "GpuBBConfig":
        """Copy with a different pool size (used by the autotuner)."""
        return replace(self, pool_size=pool_size)

    def with_placement(self, placement: Optional[DataPlacement]) -> "GpuBBConfig":
        """Copy with a different data placement."""
        return replace(self, placement=placement)

    def with_kernel(self, kernel: str) -> "GpuBBConfig":
        """Copy with a different bounding-kernel revision."""
        return replace(self, kernel=kernel)

    def describe(self) -> dict[str, object]:
        """Plain-dictionary summary (for logs and reports)."""
        return {
            "pool_size": self.pool_size,
            "threads_per_block": self.threads_per_block,
            "kernel": self.kernel,
            "blocks_per_pool": self.blocks_per_pool,
            "placement": self.placement.name if self.placement else "auto",
            "device": self.device.name,
            "selection": self.selection,
            "layout": self.layout,
            "share_incumbent": self.share_incumbent,
            "use_neh_upper_bound": self.use_neh_upper_bound,
            "max_frontier_nodes": self.max_frontier_nodes,
            "frontier_index": self.frontier_index,
            "double_buffer": self.double_buffer,
            "overlap": self.overlap,
        }
