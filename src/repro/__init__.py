"""repro — GPU-accelerated Branch-and-Bound for the Flow-Shop Scheduling Problem.

A production-quality Python reproduction of

    N. Melab, I. Chakroun, M. Mezmaz, D. Tuyttens,
    "A GPU-accelerated Branch-and-Bound Algorithm for the Flow-Shop
    Scheduling Problem", IEEE Cluster 2012.

The library is organised in five layers (see DESIGN.md):

* :mod:`repro.flowshop` — the permutation flow-shop problem: instances,
  Taillard's benchmark generator, schedules, Johnson's algorithm, and the
  Lenstra lower bound with its six data structures.
* :mod:`repro.bb` — the Branch-and-Bound machinery: nodes, pools,
  operators, the serial engine and the multi-core baseline.
* :mod:`repro.gpu` — the simulated GPU: device specs, memory hierarchy,
  occupancy calculator, data placement, transfer and kernel timing models,
  and the functional executor.
* :mod:`repro.core` — the paper's contribution: the GPU-accelerated B&B
  with parallel bounding, data-access optimisation and pool-size
  auto-tuning.
* :mod:`repro.perf` / :mod:`repro.experiments` — cost models, speed-up
  accounting and the harness that regenerates every table and figure of the
  paper's evaluation.

Quickstart
----------
>>> from repro import taillard_instance, GpuBranchAndBound, GpuBBConfig
>>> instance = taillard_instance(8, 5, index=1)   # small synthetic instance
>>> result = GpuBranchAndBound(instance, GpuBBConfig(pool_size=256)).solve()
>>> result.proved_optimal
True
"""

from repro.flowshop import (
    FlowShopInstance,
    Schedule,
    PartialSchedule,
    makespan,
    taillard_instance,
    TaillardGenerator,
    random_instance,
    neh_heuristic,
    johnson_order,
    lower_bound,
    lower_bound_batch,
    LowerBoundData,
    DataStructureComplexity,
)
from repro.bb import (
    SequentialBranchAndBound,
    MulticoreBranchAndBound,
    BBResult,
    Node,
    SearchStats,
    brute_force_optimum,
)
from repro.core import (
    GpuBranchAndBound,
    GpuBBResult,
    GpuBBConfig,
    PoolSizeAutotuner,
    HybridBranchAndBound,
    HybridConfig,
    ClusterBranchAndBound,
    ClusterSpec,
    PAPER_POOL_SIZES,
    PAPER_BLOCK_SIZE,
)
from repro.gpu import (
    DeviceSpec,
    TESLA_C2050,
    DataPlacement,
    GpuExecutor,
    GpuSimulator,
    KernelCostModel,
    OccupancyCalculator,
)
from repro.perf import CpuCostModel, MulticoreScalingModel

__version__ = "1.0.0"

__all__ = [
    # flowshop
    "FlowShopInstance",
    "Schedule",
    "PartialSchedule",
    "makespan",
    "taillard_instance",
    "TaillardGenerator",
    "random_instance",
    "neh_heuristic",
    "johnson_order",
    "lower_bound",
    "lower_bound_batch",
    "LowerBoundData",
    "DataStructureComplexity",
    # bb
    "SequentialBranchAndBound",
    "MulticoreBranchAndBound",
    "BBResult",
    "Node",
    "SearchStats",
    "brute_force_optimum",
    # core
    "GpuBranchAndBound",
    "GpuBBResult",
    "GpuBBConfig",
    "PoolSizeAutotuner",
    "HybridBranchAndBound",
    "HybridConfig",
    "ClusterBranchAndBound",
    "ClusterSpec",
    "PAPER_POOL_SIZES",
    "PAPER_BLOCK_SIZE",
    # gpu
    "DeviceSpec",
    "TESLA_C2050",
    "DataPlacement",
    "GpuExecutor",
    "GpuSimulator",
    "KernelCostModel",
    "OccupancyCalculator",
    # perf
    "CpuCostModel",
    "MulticoreScalingModel",
    "__version__",
]
