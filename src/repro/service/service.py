"""The solve service: asyncio orchestration of sessions over one dispatcher.

:class:`SolveService` is the in-process heart of ``repro serve`` (the TCP
server in :mod:`repro.service.server` is a thin wire adapter over it, and
tests/examples drive it directly).  It owns:

* one :class:`~repro.service.dispatch.BatchDispatcher` — ALL sessions park
  their bounding batches here, which is where the cross-session launch
  amortization happens;
* a :class:`~repro.service.scheduler.FairShareScheduler` for admission
  (bounded → ``overloaded`` backpressure; round-robin across clients);
* a worker thread pool of exactly ``max_active_sessions`` threads — each
  admitted session's synchronous driver loop runs on one of them while
  asyncio stays free for protocol work;
* a per-instance :class:`~repro.flowshop.bounds.LowerBoundData` cache,
  keyed by the instance's processing times.  Sessions solving the same
  instance share one object — which is also the dispatcher's grouping
  key, so their batches fuse into single launches.

Threading contract: all public coroutines run on the event-loop thread;
session solves run on pool threads and re-enter the loop only through
``run_in_executor`` completion.  :meth:`SolveService.cancel` reaches into
a running session from the loop thread via the session's thread-safe
``cancel``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.bb.snapshot import load_snapshot
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.service.dispatch import BatchDispatcher, DispatchStats, FlushPolicy
from repro.service.protocol import SolveParams
from repro.service.scheduler import FairShareScheduler, SchedulerFull
from repro.service.session import SessionConfig, SessionResult, SolveSession

__all__ = ["ServiceOverloaded", "SessionHandle", "SolveService"]

logger = logging.getLogger(__name__)


class ServiceOverloaded(Exception):
    """Admission rejected: the waiting queue is full (send ``overloaded``).

    ``queued``/``limit`` mirror :class:`~repro.service.scheduler.SchedulerFull`.
    """

    def __init__(self, queued: int, limit: int):
        super().__init__(f"service overloaded ({queued}/{limit} queued)")
        self.queued = queued
        self.limit = limit


@dataclass
class SessionHandle:
    """The service's bookkeeping for one admitted session.

    ``result`` is an asyncio future resolved with the
    :class:`~repro.service.session.SessionResult` (or the session's
    exception) when the solve ends; ``running`` flips when the session is
    handed to a worker thread.
    """

    session_id: int
    session: SolveSession
    client_id: str
    result: "asyncio.Future[SessionResult]"
    running: bool = False
    done: bool = False
    #: how many times the service restarted this session after a crash
    restarts: int = 0


def _config_from_params(params: SolveParams) -> SessionConfig:
    """Translate wire-level :class:`SolveParams` into a :class:`SessionConfig`."""
    return SessionConfig(
        selection=params.selection,
        kernel=params.kernel,
        initial_upper_bound=params.initial_upper_bound,
        max_nodes=params.max_nodes,
        max_time_s=params.max_time_s,
        max_frontier_nodes=params.max_frontier_nodes,
        frontier_index=params.frontier_index,
        overlap=params.overlap,
        checkpoint_path=params.checkpoint_path,
        checkpoint_every=params.checkpoint_every,
    )


@dataclass
class _InstanceCache:
    """Share one ``LowerBoundData`` per distinct instance.

    Key: ``(n_jobs, n_machines, processing-time bytes)`` — the full
    instance content, so two requests naming the same Taillard instance
    (or shipping equal explicit matrices) resolve to the SAME object and
    therefore coalesce in the dispatcher.
    """

    _entries: dict[tuple, LowerBoundData] = field(default_factory=dict)

    def get(self, instance: FlowShopInstance) -> LowerBoundData:
        """One shared ``LowerBoundData`` per distinct processing-time matrix.

        Sessions solving the same instance must share the *same object* —
        the dispatcher groups batches by ``id(data)``, so identity is what
        makes cross-session fusion possible.
        """
        key = (
            instance.n_jobs,
            instance.n_machines,
            instance.processing_times.tobytes(),
        )
        data = self._entries.get(key)
        if data is None:
            data = LowerBoundData(instance)
            self._entries[key] = data
        return data


class SolveService:
    """Serve concurrent B&B solves with cross-session batched bounding.

    Parameters
    ----------
    max_active_sessions:
        Sessions solving concurrently (= worker threads).  ``1`` degrades
        to a serial queue — the launch-count baseline of
        ``benchmarks/bench_service.py``.
    max_queued:
        Bound of the admission queue; beyond it :meth:`submit` raises
        :class:`ServiceOverloaded`.
    flush_policy:
        Dispatcher flush policy (max-wait / max-batch); ``None`` for
        defaults.
    checkpoint_dir / checkpoint_every:
        Fault tolerance: with a directory set, every session checkpoints
        its in-flight search to ``<dir>/session-<id>.rpbb`` every
        ``checkpoint_every`` driver steps, and a session whose worker
        thread dies is restarted from its last snapshot (see
        ``max_session_restarts``).
    max_session_restarts / restart_backoff_s:
        The bounded retry budget for dead sessions: up to
        ``max_session_restarts`` restarts per session, sleeping
        ``restart_backoff_s * attempt`` before each.  Past the budget the
        session's failure propagates to its result future.
    launch_timeout_s / max_launch_retries / launch_hook:
        Forwarded to the :class:`BatchDispatcher` (per-launch watchdog,
        retry budget, fault-injection seam).
    session_fault_hook:
        Fault-injection seam: called with a ``session_id``, returns the
        per-selection hook installed into that session (or ``None``).
        See :mod:`repro.testing.faults`.
    on_event:
        Observability callback ``(request_id, kind, payload)`` — fired for
        ``"checkpoint"`` (from session worker threads!), ``"degraded"``
        (from the dispatcher thread) and ``"restart"`` (loop thread)
        events.  Async consumers must trampoline via
        ``loop.call_soon_threadsafe``.
    overlap:
        ``"sync"`` (default) evaluates coalesced batches inline on the
        dispatcher's pump thread; ``"async"`` hands each launch to the
        dispatcher's single-slot worker so the pump keeps collecting and
        coalescing requests while a launch is bounding (see
        :class:`~repro.service.dispatch.BatchDispatcher`).  Results are
        bit-identical either way.

    Lifecycle: ``start`` → any number of ``submit``/``result``/``cancel``/
    ``status`` → ``close`` (also usable as an async context manager).
    """

    def __init__(
        self,
        max_active_sessions: int = 8,
        max_queued: int = 64,
        flush_policy: Optional[FlushPolicy] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        max_session_restarts: int = 2,
        restart_backoff_s: float = 0.05,
        launch_timeout_s: Optional[float] = None,
        max_launch_retries: int = 1,
        launch_hook: Optional[Callable[[int], None]] = None,
        session_fault_hook: Optional[Callable[[int], Optional[Callable[[int], None]]]] = None,
        on_event: Optional[Callable[[str, str, dict], None]] = None,
        overlap: str = "sync",
    ):
        if max_active_sessions < 1:
            raise ValueError("max_active_sessions must be >= 1")
        if max_session_restarts < 0:
            raise ValueError("max_session_restarts must be >= 0")
        if restart_backoff_s < 0:
            raise ValueError("restart_backoff_s must be >= 0")
        self.max_active_sessions = max_active_sessions
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.checkpoint_every = checkpoint_every
        self.max_session_restarts = max_session_restarts
        self.restart_backoff_s = restart_backoff_s
        self.session_fault_hook = session_fault_hook
        self.on_event = on_event
        self.dispatcher = BatchDispatcher(
            flush_policy,
            autostart=False,
            overlap=overlap,
            launch_timeout_s=launch_timeout_s,
            max_launch_retries=max_launch_retries,
            launch_hook=launch_hook,
            on_degraded=self._on_degraded,
        )
        self._scheduler = FairShareScheduler(max_queued=max_queued)
        self._instance_cache = _InstanceCache()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._handles: dict[str, SessionHandle] = {}
        self._request_by_session: dict[int, str] = {}
        self._session_ids = itertools.count(1)
        self._active = 0
        self._completed = 0
        self._restarts = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    #  lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the dispatcher thread and the session worker pool."""
        if self._started:
            return
        self._started = True
        self.dispatcher.start()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_active_sessions, thread_name_prefix="solve-session"
        )

    async def close(self) -> None:
        """Cancel everything outstanding and shut both thread layers down."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            if not handle.done:
                handle.session.cancel()
        pending = [h.result for h in self._handles.values() if not h.result.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self.dispatcher.close()

    async def __aenter__(self) -> "SolveService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    #  request plane
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        request_id: str,
        instance: FlowShopInstance,
        params: SolveParams | None = None,
        client_id: str = "anonymous",
    ) -> int:
        """Admit one solve; returns the assigned ``session_id``.

        Raises :class:`ServiceOverloaded` when the waiting queue is full,
        ``KeyError`` on a duplicate ``request_id``, ``ValueError`` for bad
        parameters.  The solve itself is awaited via :meth:`result`.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        if request_id in self._handles:
            raise KeyError(f"duplicate request_id {request_id!r}")
        config = _config_from_params(params if params is not None else SolveParams())
        return self._admit(request_id, instance, config, client_id)

    async def submit_resume(
        self,
        request_id: str,
        snapshot_path: Union[str, Path],
        client_id: str = "anonymous",
    ) -> int:
        """Admit a solve that continues from a snapshot file on this host.

        The snapshot (written by an earlier checkpointing session or a
        ``repro solve --checkpoint`` run) is self-describing: the instance
        and the engine configuration are rebuilt from its header, and the
        session resumes the saved frontier instead of starting over.
        Raises :class:`~repro.bb.snapshot.SnapshotError` subclasses for
        corrupt/unsupported files — the server maps them onto ``error``
        replies.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        if request_id in self._handles:
            raise KeyError(f"duplicate request_id {request_id!r}")
        snapshot = load_snapshot(snapshot_path)
        engine = snapshot.engine
        max_frontier = engine.get("max_frontier_nodes")
        config = SessionConfig(
            selection=str(engine.get("selection", "best-first")),
            kernel=str(engine.get("kernel", "v2")),
            include_one_machine=bool(engine.get("include_one_machine", False)),
            max_frontier_nodes=int(max_frontier) if max_frontier is not None else None,
            frontier_index=str(engine.get("frontier_index", "segmented")),
            overlap=str(engine.get("overlap", "sync")),
            resume_from=str(snapshot_path),
        )
        return self._admit(request_id, snapshot.instance, config, client_id)

    def _admit(
        self,
        request_id: str,
        instance: FlowShopInstance,
        config: SessionConfig,
        client_id: str,
    ) -> int:
        session_id = next(self._session_ids)
        if self.checkpoint_dir is not None and config.checkpoint_path is None:
            config = dataclasses.replace(
                config,
                checkpoint_path=str(self.checkpoint_dir / f"session-{session_id}.rpbb"),
                checkpoint_every=self.checkpoint_every,
            )
        session = self._build_session(session_id, instance, config, request_id)
        handle = SessionHandle(
            session_id=session_id,
            session=session,
            client_id=client_id,
            result=asyncio.get_running_loop().create_future(),
        )
        try:
            self._scheduler.push(client_id, (request_id, handle))
        except SchedulerFull as exc:
            raise ServiceOverloaded(exc.queued, exc.limit) from None
        self._handles[request_id] = handle
        self._request_by_session[session_id] = request_id
        self._pump()
        return session_id

    def _build_session(
        self,
        session_id: int,
        instance: FlowShopInstance,
        config: SessionConfig,
        request_id: str,
    ) -> SolveSession:
        fault_hook = (
            self.session_fault_hook(session_id)
            if self.session_fault_hook is not None
            else None
        )
        return SolveSession(
            session_id,
            instance,
            self._instance_cache.get(instance),
            self.dispatcher,
            config,
            on_event=lambda kind, payload: self._emit(request_id, kind, payload),
            fault_hook=fault_hook,
        )

    # ------------------------------------------------------------------ #
    #  events
    # ------------------------------------------------------------------ #
    def _emit(self, request_id: str, kind: str, payload: dict) -> None:
        """Forward one observability event (may run on any thread)."""
        callback = self.on_event
        if callback is not None:
            callback(request_id, kind, payload)

    def _on_degraded(self, token: object, reason: str) -> None:
        """Dispatcher callback: map the degraded session token to its request."""
        session_id = getattr(token, "session_id", None)
        request_id = self._request_by_session.get(session_id)
        if request_id is not None:
            self._emit(
                request_id, "degraded", {"session_id": session_id, "reason": reason}
            )

    async def result(self, request_id: str) -> SessionResult:
        """Await the terminal :class:`SessionResult` of ``request_id``."""
        handle = self._handles.get(request_id)
        if handle is None:
            raise KeyError(f"unknown request_id {request_id!r}")
        return await asyncio.shield(handle.result)

    async def solve(
        self,
        request_id: str,
        instance: FlowShopInstance,
        params: SolveParams | None = None,
        client_id: str = "anonymous",
    ) -> SessionResult:
        """Convenience: :meth:`submit` then :meth:`result` in one await."""
        await self.submit(request_id, instance, params, client_id=client_id)
        return await self.result(request_id)

    async def cancel(self, request_id: str) -> bool:
        """Cancel ``request_id``; returns whether it was already running.

        A queued session stays queued but terminates at its first selection
        step when its turn comes, so its ``result`` (flagged cancelled)
        still resolves through the ordinary path.  Raises ``KeyError`` for
        unknown ids.
        """
        handle = self._handles.get(request_id)
        if handle is None:
            raise KeyError(f"unknown request_id {request_id!r}")
        was_running = handle.running and not handle.done
        handle.session.cancel()
        return was_running

    def stats(self) -> dict[str, object]:
        """Gauges + dispatcher statistics (the ``status_reply`` payload)."""
        return {
            "active_sessions": self._active,
            "queued_sessions": len(self._scheduler),
            "completed_sessions": self._completed,
            "session_restarts": self._restarts,
            "dispatcher": self.dispatch_stats.as_dict(),
        }

    @property
    def dispatch_stats(self) -> DispatchStats:
        """The shared dispatcher's coalescing statistics."""
        return self.dispatcher.stats

    # ------------------------------------------------------------------ #
    #  session pump (admission → worker threads)
    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        """Hand queued sessions to worker threads while slots are free."""
        while self._active < self.max_active_sessions:
            entry = self._scheduler.pop()
            if entry is None:
                return
            request_id, handle = entry
            self._active += 1
            handle.running = True
            # count the session into the all-parked gauge NOW, before its
            # thread spins up — peers that park meanwhile will wait for it
            self.dispatcher.session_started()
            asyncio.get_running_loop().create_task(self._run_session(request_id, handle))

    async def _run_session(self, request_id: str, handle: SessionHandle) -> None:
        """Run one session on a pool thread and settle its result future.

        Crash recovery: when the session's worker thread dies with an
        exception (an injected fault, a kernel failure, a bug), the
        session is rebuilt — resuming from its last snapshot when it wrote
        one, from scratch otherwise — and re-run under the bounded
        retry/backoff budget.  Only past the budget (or after an explicit
        cancel / service shutdown) does the failure reach the result
        future.
        """
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    result = await loop.run_in_executor(
                        self._executor, lambda: handle.session.run(registered=True)
                    )
                except asyncio.CancelledError:
                    raise
                # repro-lint: ignore[bare-except] -- recovery site: a dead
                # session thread is restarted from its last snapshot
                except Exception as exc:
                    if (
                        handle.restarts >= self.max_session_restarts
                        or self._closed
                        or handle.session.cancel_requested
                    ):
                        if not handle.result.done():
                            handle.result.set_exception(exc)
                        return
                    handle.restarts += 1
                    self._restarts += 1
                    resume_from = handle.session.last_checkpoint_path
                    logger.warning(
                        "session %d died (%s); restart %d/%d from %s",
                        handle.session_id,
                        exc,
                        handle.restarts,
                        self.max_session_restarts,
                        resume_from if resume_from is not None else "scratch",
                    )
                    self._emit(
                        request_id,
                        "restart",
                        {
                            "session_id": handle.session_id,
                            "attempt": handle.restarts,
                            "error": str(exc),
                            "resume_from": str(resume_from) if resume_from else None,
                        },
                    )
                    await asyncio.sleep(self.restart_backoff_s * handle.restarts)
                    dead = handle.session
                    config = dead.config
                    if resume_from is not None:
                        config = dataclasses.replace(
                            config, resume_from=str(resume_from)
                        )
                    handle.session = self._build_session(
                        handle.session_id,
                        dead.instance,
                        config,
                        request_id,
                    )
                    if dead.cancel_requested:
                        # a cancel that raced the backoff sleep carries over
                        handle.session.cancel()
                    # the dead incarnation released the all-parked gauge in
                    # run()'s finally; the replacement re-registers
                    self.dispatcher.session_started()
                    continue
                else:
                    if not handle.result.done():
                        handle.result.set_result(result)
                    return
        finally:
            handle.done = True
            self._active -= 1
            self._completed += 1
            self._pump()
