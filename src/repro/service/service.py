"""The solve service: asyncio orchestration of sessions over one dispatcher.

:class:`SolveService` is the in-process heart of ``repro serve`` (the TCP
server in :mod:`repro.service.server` is a thin wire adapter over it, and
tests/examples drive it directly).  It owns:

* one :class:`~repro.service.dispatch.BatchDispatcher` — ALL sessions park
  their bounding batches here, which is where the cross-session launch
  amortization happens;
* a :class:`~repro.service.scheduler.FairShareScheduler` for admission
  (bounded → ``overloaded`` backpressure; round-robin across clients);
* a worker thread pool of exactly ``max_active_sessions`` threads — each
  admitted session's synchronous driver loop runs on one of them while
  asyncio stays free for protocol work;
* a per-instance :class:`~repro.flowshop.bounds.LowerBoundData` cache,
  keyed by the instance's processing times.  Sessions solving the same
  instance share one object — which is also the dispatcher's grouping
  key, so their batches fuse into single launches.

Threading contract: all public coroutines run on the event-loop thread;
session solves run on pool threads and re-enter the loop only through
``run_in_executor`` completion.  :meth:`SolveService.cancel` reaches into
a running session from the loop thread via the session's thread-safe
``cancel``.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.service.dispatch import BatchDispatcher, DispatchStats, FlushPolicy
from repro.service.protocol import SolveParams
from repro.service.scheduler import FairShareScheduler, SchedulerFull
from repro.service.session import SessionConfig, SessionResult, SolveSession

__all__ = ["ServiceOverloaded", "SessionHandle", "SolveService"]


class ServiceOverloaded(Exception):
    """Admission rejected: the waiting queue is full (send ``overloaded``).

    ``queued``/``limit`` mirror :class:`~repro.service.scheduler.SchedulerFull`.
    """

    def __init__(self, queued: int, limit: int):
        super().__init__(f"service overloaded ({queued}/{limit} queued)")
        self.queued = queued
        self.limit = limit


@dataclass
class SessionHandle:
    """The service's bookkeeping for one admitted session.

    ``result`` is an asyncio future resolved with the
    :class:`~repro.service.session.SessionResult` (or the session's
    exception) when the solve ends; ``running`` flips when the session is
    handed to a worker thread.
    """

    session_id: int
    session: SolveSession
    client_id: str
    result: "asyncio.Future[SessionResult]"
    running: bool = False
    done: bool = False


def _config_from_params(params: SolveParams) -> SessionConfig:
    """Translate wire-level :class:`SolveParams` into a :class:`SessionConfig`."""
    return SessionConfig(
        selection=params.selection,
        kernel=params.kernel,
        initial_upper_bound=params.initial_upper_bound,
        max_nodes=params.max_nodes,
        max_time_s=params.max_time_s,
        max_frontier_nodes=params.max_frontier_nodes,
    )


@dataclass
class _InstanceCache:
    """Share one ``LowerBoundData`` per distinct instance.

    Key: ``(n_jobs, n_machines, processing-time bytes)`` — the full
    instance content, so two requests naming the same Taillard instance
    (or shipping equal explicit matrices) resolve to the SAME object and
    therefore coalesce in the dispatcher.
    """

    _entries: dict[tuple, LowerBoundData] = field(default_factory=dict)

    def get(self, instance: FlowShopInstance) -> LowerBoundData:
        """One shared ``LowerBoundData`` per distinct processing-time matrix.

        Sessions solving the same instance must share the *same object* —
        the dispatcher groups batches by ``id(data)``, so identity is what
        makes cross-session fusion possible.
        """
        key = (
            instance.n_jobs,
            instance.n_machines,
            instance.processing_times.tobytes(),
        )
        data = self._entries.get(key)
        if data is None:
            data = LowerBoundData(instance)
            self._entries[key] = data
        return data


class SolveService:
    """Serve concurrent B&B solves with cross-session batched bounding.

    Parameters
    ----------
    max_active_sessions:
        Sessions solving concurrently (= worker threads).  ``1`` degrades
        to a serial queue — the launch-count baseline of
        ``benchmarks/bench_service.py``.
    max_queued:
        Bound of the admission queue; beyond it :meth:`submit` raises
        :class:`ServiceOverloaded`.
    flush_policy:
        Dispatcher flush policy (max-wait / max-batch); ``None`` for
        defaults.

    Lifecycle: ``start`` → any number of ``submit``/``result``/``cancel``/
    ``status`` → ``close`` (also usable as an async context manager).
    """

    def __init__(
        self,
        max_active_sessions: int = 8,
        max_queued: int = 64,
        flush_policy: Optional[FlushPolicy] = None,
    ):
        if max_active_sessions < 1:
            raise ValueError("max_active_sessions must be >= 1")
        self.max_active_sessions = max_active_sessions
        self.dispatcher = BatchDispatcher(flush_policy, autostart=False)
        self._scheduler = FairShareScheduler(max_queued=max_queued)
        self._instance_cache = _InstanceCache()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._handles: dict[str, SessionHandle] = {}
        self._session_ids = itertools.count(1)
        self._active = 0
        self._completed = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    #  lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the dispatcher thread and the session worker pool."""
        if self._started:
            return
        self._started = True
        self.dispatcher.start()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_active_sessions, thread_name_prefix="solve-session"
        )

    async def close(self) -> None:
        """Cancel everything outstanding and shut both thread layers down."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            if not handle.done:
                handle.session.cancel()
        pending = [h.result for h in self._handles.values() if not h.result.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self.dispatcher.close()

    async def __aenter__(self) -> "SolveService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    #  request plane
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        request_id: str,
        instance: FlowShopInstance,
        params: SolveParams | None = None,
        client_id: str = "anonymous",
    ) -> int:
        """Admit one solve; returns the assigned ``session_id``.

        Raises :class:`ServiceOverloaded` when the waiting queue is full,
        ``KeyError`` on a duplicate ``request_id``, ``ValueError`` for bad
        parameters.  The solve itself is awaited via :meth:`result`.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        if request_id in self._handles:
            raise KeyError(f"duplicate request_id {request_id!r}")
        config = _config_from_params(params if params is not None else SolveParams())
        session_id = next(self._session_ids)
        session = SolveSession(
            session_id,
            instance,
            self._instance_cache.get(instance),
            self.dispatcher,
            config,
        )
        handle = SessionHandle(
            session_id=session_id,
            session=session,
            client_id=client_id,
            result=asyncio.get_running_loop().create_future(),
        )
        try:
            self._scheduler.push(client_id, (request_id, handle))
        except SchedulerFull as exc:
            raise ServiceOverloaded(exc.queued, exc.limit) from None
        self._handles[request_id] = handle
        self._pump()
        return session_id

    async def result(self, request_id: str) -> SessionResult:
        """Await the terminal :class:`SessionResult` of ``request_id``."""
        handle = self._handles.get(request_id)
        if handle is None:
            raise KeyError(f"unknown request_id {request_id!r}")
        return await asyncio.shield(handle.result)

    async def solve(
        self,
        request_id: str,
        instance: FlowShopInstance,
        params: SolveParams | None = None,
        client_id: str = "anonymous",
    ) -> SessionResult:
        """Convenience: :meth:`submit` then :meth:`result` in one await."""
        await self.submit(request_id, instance, params, client_id=client_id)
        return await self.result(request_id)

    async def cancel(self, request_id: str) -> bool:
        """Cancel ``request_id``; returns whether it was already running.

        A queued session stays queued but terminates at its first selection
        step when its turn comes, so its ``result`` (flagged cancelled)
        still resolves through the ordinary path.  Raises ``KeyError`` for
        unknown ids.
        """
        handle = self._handles.get(request_id)
        if handle is None:
            raise KeyError(f"unknown request_id {request_id!r}")
        was_running = handle.running and not handle.done
        handle.session.cancel()
        return was_running

    def stats(self) -> dict[str, object]:
        """Gauges + dispatcher statistics (the ``status_reply`` payload)."""
        return {
            "active_sessions": self._active,
            "queued_sessions": len(self._scheduler),
            "completed_sessions": self._completed,
            "dispatcher": self.dispatch_stats.as_dict(),
        }

    @property
    def dispatch_stats(self) -> DispatchStats:
        """The shared dispatcher's coalescing statistics."""
        return self.dispatcher.stats

    # ------------------------------------------------------------------ #
    #  session pump (admission → worker threads)
    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        """Hand queued sessions to worker threads while slots are free."""
        while self._active < self.max_active_sessions:
            entry = self._scheduler.pop()
            if entry is None:
                return
            request_id, handle = entry
            self._active += 1
            handle.running = True
            # count the session into the all-parked gauge NOW, before its
            # thread spins up — peers that park meanwhile will wait for it
            self.dispatcher.session_started()
            asyncio.get_running_loop().create_task(self._run_session(request_id, handle))

    async def _run_session(self, request_id: str, handle: SessionHandle) -> None:
        """Run one session on a pool thread and settle its result future."""
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, lambda: handle.session.run(registered=True)
            )
        except BaseException as exc:
            if not handle.result.done():
                handle.result.set_exception(exc)
        else:
            if not handle.result.done():
                handle.result.set_result(result)
        finally:
            handle.done = True
            self._active -= 1
            self._completed += 1
            self._pump()
