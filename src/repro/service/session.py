"""One solve session: a private frontier driven through the shared dispatcher.

A :class:`SolveSession` is the service-side unit of work for one
``solve`` request.  It owns its own :class:`~repro.bb.frontier.BlockFrontier`
(and trail, stats, incumbent) and runs the standard
:class:`~repro.bb.driver.SearchDriver` single-step loop in a worker thread —
the ONLY difference from :class:`~repro.bb.sequential.SequentialBranchAndBound`
is the bounding backend: a :class:`~repro.service.dispatch.BatchingOffload`
that parks each bounding batch on the shared dispatcher instead of
evaluating it inline.

Bit-identity contract: because the session replicates the sequential
engine's recipe exactly — NEH seeding (and its ``incumbent_updates``
credit), root bounded before the driver runs (``nodes_bounded`` credit),
identical driver configuration, identical stats finalization — and because
every kernel path returns bit-identical bounds, a session's
:class:`SessionResult` carries the same makespan, permutation, optimality
flag and full counter set as a stand-alone sequential solve of the same
instance and parameters.  ``tests/test_service.py`` pins this against the
golden fixture configs.

Cancellation has two doors, covering both places a session thread can be:

* **while selecting** — the driver's ``on_select`` hook checks the
  session's cancel event and raises
  :class:`~repro.service.dispatch.SessionCancelled`;
* **while parked mid-batch** — :meth:`SolveSession.cancel` also calls the
  dispatcher's ``cancel_pending``, which fails the parked future with the
  same exception so the blocked ``bound_block`` call unwinds.

Either way :meth:`SolveSession.run` catches the exception and reports the
best incumbent known at that point with ``cancelled=True``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.bb.driver import SearchDriver, SearchHooks, SearchLimits
from repro.bb.frontier import BlockFrontier, Trail, bound_block, root_block
from repro.bb.snapshot import (
    CheckpointPolicy,
    CheckpointState,
    SnapshotMismatch,
    dumps_snapshot,
    instance_fingerprint,
    load_snapshot,
    save_snapshot,
)
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.service.dispatch import BatchDispatcher, BatchingOffload, SessionCancelled

__all__ = ["SessionConfig", "SessionResult", "SolveSession"]


@dataclass(frozen=True)
class SessionConfig:
    """Per-session solver parameters (the server-side view of ``SolveParams``).

    All fields mirror :class:`~repro.bb.sequential.SequentialBranchAndBound`
    constructor arguments of the same name; defaults are the engine's
    defaults, which keeps a default session bit-identical to a default
    sequential solve.
    """

    selection: str = "best-first"
    kernel: str = "v2"
    initial_upper_bound: Optional[float] = None
    include_one_machine: bool = False
    max_nodes: Optional[int] = None
    max_time_s: Optional[float] = None
    max_frontier_nodes: Optional[int] = None
    #: frontier selection index: "segmented" (default) or "linear"
    frontier_index: str = "segmented"
    #: offload execution mode forwarded to the driver: "sync" or "async"
    #: (a validated no-op for the session's single-step shape, but recorded
    #: in snapshot headers and restored on resume)
    overlap: str = "sync"
    #: snapshot file this session checkpoints to (fault tolerance); ``None``
    #: disables checkpointing
    checkpoint_path: Optional[str] = None
    #: checkpoint every N driver steps (requires ``checkpoint_path``)
    checkpoint_every: Optional[int] = None
    #: snapshot file to resume from instead of starting a fresh search
    resume_from: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kernel not in ("v1", "v2"):
            raise ValueError(
                f"service sessions require a batched kernel ('v1'/'v2'), got {self.kernel!r}"
            )
        if self.selection not in ("best-first", "depth-first", "fifo"):
            raise ValueError(f"unknown selection strategy {self.selection!r}")
        if self.max_frontier_nodes is not None and self.max_frontier_nodes < 1:
            raise ValueError("max_frontier_nodes must be >= 1 when given")
        if self.frontier_index not in ("segmented", "linear"):
            raise ValueError(
                f"frontier_index must be 'segmented' or 'linear', "
                f"got {self.frontier_index!r}"
            )
        if self.overlap not in ("sync", "async"):
            raise ValueError(
                f"overlap must be 'sync' or 'async', got {self.overlap!r}"
            )
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1 when given")
            if self.checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")


@dataclass
class SessionResult:
    """Outcome of one session (the service-side analogue of ``BBResult``).

    ``makespan``/``order``/``proved_optimal``/``stats`` match what a
    sequential solve would report; ``cancelled`` marks sessions that were
    cancelled mid-search — their fields then describe the best incumbent
    known at cancellation and ``proved_optimal`` is ``False``.
    """

    session_id: int
    makespan: int
    order: tuple[int, ...]
    proved_optimal: bool
    cancelled: bool = False
    stats: SearchStats = field(default_factory=SearchStats)

    def stats_dict(self) -> dict[str, Any]:
        """The counters as a plain dict (what ``ResultReply.stats`` carries)."""
        return self.stats.as_dict()


class SolveSession:
    """One request's search: private frontier, shared batched bounding.

    Parameters
    ----------
    session_id:
        Service-assigned identifier (echoed in results and stats).
    instance / data:
        The flow-shop instance and its precomputed bound structures.
        ``data`` MUST be the service's shared per-instance object —
        the dispatcher groups coalescible requests by its identity.
    dispatcher:
        The shared :class:`BatchDispatcher` bounding batches are parked on.
    config:
        Solver parameters (:class:`SessionConfig`).

    :meth:`run` is synchronous and is executed on a worker thread by the
    service; :meth:`cancel` may be called from any thread.
    """

    def __init__(
        self,
        session_id: int,
        instance: FlowShopInstance,
        data: LowerBoundData,
        dispatcher: BatchDispatcher,
        config: SessionConfig | None = None,
        on_event: Optional[Callable[[str, dict], None]] = None,
        fault_hook: Optional[Callable[[int], None]] = None,
    ):
        self.session_id = session_id
        self.instance = instance
        self.data = data
        self.dispatcher = dispatcher
        self.config = config if config is not None else SessionConfig()
        #: called (from the session's worker thread) with ``(kind, payload)``
        #: for observability events — currently ``"checkpoint"``
        self.on_event = on_event
        #: fault-injection seam: called with the selection-step index at
        #: every selection, before the cancel check (see repro.testing.faults)
        self.fault_hook = fault_hook
        #: newest snapshot this session wrote (or resumed from) — what the
        #: service restarts a dead session from
        self.last_checkpoint_path: Optional[Path] = (
            Path(self.config.resume_from) if self.config.resume_from else None
        )
        #: snapshots written by this session incarnation
        self.checkpoints_written = 0
        self._cancel = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (thread-safe, idempotent).

        Sets the cancel flag (picked up at the next selection step) and
        fails any bounding request this session has parked on the
        dispatcher, so a session blocked mid-batch unwinds immediately
        without stalling its peers' flush.
        """
        self._cancel.set()
        self.dispatcher.cancel_pending(self)

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancel.is_set()

    # ------------------------------------------------------------------ #
    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        """NEH-seeded (or explicit) starting incumbent — sequential recipe."""
        if self.config.initial_upper_bound is not None:
            return float(self.config.initial_upper_bound), ()
        heuristic = neh_heuristic(self.instance)
        return float(heuristic.makespan), tuple(heuristic.order)

    def run(self, registered: bool = False) -> SessionResult:
        """Solve to completion, budget exhaustion, or cancellation.

        Mirrors ``SequentialBranchAndBound.solve`` step for step (seeding,
        root bounding, driver configuration, stats finalization) so the
        result is bit-identical to a stand-alone solve; only the bounding
        backend differs.  Raises ``RuntimeError`` when the search ends
        without any incumbent (explicit non-improvable upper bound).

        ``registered=True`` means the caller already counted this session
        into the dispatcher's active gauge (the service registers at
        admission time, so sessions still seeding their incumbent hold the
        ``all-parked`` flush for their soon-to-park batches); the gauge is
        always released here when the loop exits.
        """
        config = self.config
        instance = self.instance
        include_one_machine = config.include_one_machine or instance.n_machines == 1
        if not registered:
            self.dispatcher.session_started()
        try:
            return self._solve(config, instance, include_one_machine)
        finally:
            self.dispatcher.session_finished()

    def _engine_config(self, include_one_machine: bool) -> dict:
        """Engine settings recorded in this session's snapshot headers."""
        config = self.config
        return {
            "engine": "session",
            "selection": config.selection,
            "kernel": config.kernel,
            "layout": "block",
            "include_one_machine": include_one_machine,
            "max_frontier_nodes": config.max_frontier_nodes,
            "frontier_index": config.frontier_index,
            "overlap": config.overlap,
            "trace": False,
        }

    def _make_checkpoint_hook(self, include_one_machine: bool):
        """The ``on_checkpoint`` callback: snapshot to the configured path."""
        path = Path(self.config.checkpoint_path)
        engine = self._engine_config(include_one_machine)

        def write(state: CheckpointState) -> None:
            blob = dumps_snapshot(
                self.instance,
                layout="block",
                frontier=state.frontier,
                trail=state.trail,
                upper_bound=state.upper_bound,
                best_order=state.best_order_supplier(),
                next_order=state.next_order,
                stats=state.stats,
                engine=engine,
            )
            save_snapshot(path, blob)
            self.checkpoints_written += 1
            self.last_checkpoint_path = path
            if self.on_event is not None:
                self.on_event(
                    "checkpoint",
                    {
                        "session_id": self.session_id,
                        "path": str(path),
                        "sequence": self.checkpoints_written,
                        "steps": state.steps,
                    },
                )

        return write

    def _load_resume_state(self, instance):
        """Materialize ``config.resume_from`` and verify it belongs to us."""
        snapshot = load_snapshot(self.config.resume_from)
        if snapshot.layout != "block":
            raise SnapshotMismatch(
                "service sessions run the block layout; cannot resume "
                f"a {snapshot.layout!r}-layout snapshot"
            )
        if snapshot.header["instance"]["fingerprint"] != instance_fingerprint(instance):
            raise SnapshotMismatch(
                "snapshot belongs to a different instance than this session"
            )
        return snapshot

    def _solve(self, config, instance, include_one_machine) -> SessionResult:
        """The sequential-recipe solve body (gauge handling lives in ``run``)."""
        resumed = (
            self._load_resume_state(instance) if config.resume_from else None
        )
        if resumed is not None:
            stats = resumed.stats
            upper_bound, best_order = resumed.upper_bound, resumed.best_order
            carried_time_s = stats.time_total_s
        else:
            stats = SearchStats()
            upper_bound, best_order = self._initial_incumbent()
            if best_order:
                stats.incumbent_updates += 1
            carried_time_s = 0.0
        best_makespan = upper_bound if best_order else None

        def record_incumbent(makespan, supplier):
            nonlocal best_makespan, best_order
            best_makespan = makespan
            best_order = supplier()

        fault_hook = self.fault_hook

        def check_cancel(step: int) -> None:
            if fault_hook is not None:
                fault_hook(step)
            if self._cancel.is_set():
                raise SessionCancelled("session cancelled")

        offload = BatchingOffload(
            self.dispatcher,
            self.data,
            token=self,
            kernel=config.kernel,
            include_one_machine=include_one_machine,
        )
        hooks = SearchHooks(on_select=check_cancel, on_improve_incumbent=record_incumbent)
        checkpoint: Optional[CheckpointPolicy] = None
        if config.checkpoint_path is not None and config.checkpoint_every is not None:
            checkpoint = CheckpointPolicy(every_steps=config.checkpoint_every)
            hooks.on_checkpoint = self._make_checkpoint_hook(include_one_machine)
        driver = SearchDriver(
            instance,
            self.data,
            layout="block",
            selection=config.selection,
            kernel=config.kernel,
            include_one_machine=include_one_machine,
            offload=offload,
            limits=SearchLimits(max_nodes=config.max_nodes, max_time_s=config.max_time_s),
            hooks=hooks,
            overlap=config.overlap,
            checkpoint=checkpoint,
        )

        start = time.perf_counter()
        if resumed is not None:
            frontier = resumed.frontier
            trail = resumed.trail
            next_order = resumed.next_order
        else:
            trail = Trail()
            frontier = BlockFrontier(
                instance.n_jobs,
                instance.n_machines,
                trail,
                strategy=config.selection,
                max_pending=config.max_frontier_nodes,
                frontier_index=config.frontier_index,
            )
            root = root_block(instance, trail)
            t0 = time.perf_counter()
            # the root is a single node bounded before any peer session exists
            # to coalesce with — evaluate it locally, as the serial engine does
            bound_block(self.data, root, include_one_machine, kernel=config.kernel)
            stats.time_bounding_s += time.perf_counter() - t0
            stats.nodes_bounded += 1
            frontier.push_block(root)
            next_order = 1

        try:
            outcome = driver.run(
                frontier,
                upper_bound=upper_bound,
                best_order=best_order,
                stats=stats,
                trail=trail,
                next_order=next_order,
                start=start,
            )
        except SessionCancelled:
            stats.time_total_s = carried_time_s + (time.perf_counter() - start)
            stats.max_pool_size = frontier.max_size_seen
            if best_makespan is None or not best_order:
                raise RuntimeError(
                    "session cancelled before any incumbent was found"
                ) from None
            return SessionResult(
                session_id=self.session_id,
                makespan=int(best_makespan),
                order=tuple(best_order),
                proved_optimal=False,
                cancelled=True,
                stats=stats,
            )

        stats.time_total_s = carried_time_s + (time.perf_counter() - start)
        stats.max_pool_size = frontier.max_size_seen

        if not outcome.best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; provide a finite "
                "initial upper bound or let NEH seed the search"
            )
        return SessionResult(
            session_id=self.session_id,
            makespan=int(outcome.upper_bound),
            order=tuple(outcome.best_order),
            proved_optimal=outcome.completed,
            cancelled=False,
            stats=stats,
        )
