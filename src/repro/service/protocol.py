"""Wire protocol of the solve service: typed messages over JSON lines.

The service speaks **newline-delimited JSON** ("JSON lines"): every message
is one JSON object on one line, and every object carries a ``"type"`` field
naming its message class.  This module defines the message dataclasses, the
``encode``/``decode`` codec between them and wire lines, and nothing else —
it imports no asyncio and no solver machinery, so clients in other
processes (or other languages) only need this file's *schema*, not the
repository.

Message inventory
-----------------
Client → server:

``solve``
    Submit one instance for solving (:class:`SolveRequest`).  The server
    answers with ``accepted`` (a session was opened), ``overloaded`` (the
    bounded admission queue is full — backpressure, try again later) or
    ``error`` (the request itself was malformed).  When the session ends, a
    ``result`` message with the same ``request_id`` follows.
``cancel``
    Cancel a previously submitted request (:class:`CancelRequest`), whether
    it is still queued or already running.  Answered by ``cancelled`` (or
    ``error`` for unknown ids); the session's ``result`` message still
    arrives, flagged ``cancelled: true``.
``status``
    Ask for service health and dispatcher statistics
    (:class:`StatusRequest` → :class:`StatusReply`).
``resume``
    Continue a checkpointed solve from a snapshot file on the server's
    host (:class:`ResumeRequest`).  The snapshot is self-describing
    (instance + engine config travel in its header), so the request names
    only the path; ``header`` optionally carries the client's view of the
    snapshot header — the server rejects unsupported ``format_version``
    values with ``error`` before touching the file.  Answered like
    ``solve`` (``accepted``/``overloaded``/``error``, then ``result``).

Server → client:

``accepted`` / ``overloaded`` / ``cancelled`` / ``error`` / ``status_reply``
    Control-plane answers, each echoing the ``request_id`` it refers to
    (``status_reply`` echoes the ``status`` request's id).
``result``
    Terminal message of one session (:class:`ResultReply`): makespan,
    permutation, optimality proof, cancellation flag and the solve
    counters.
``checkpoint``
    Progress event of a checkpointing session (:class:`CheckpointReply`):
    the session wrote snapshot number ``sequence`` to ``path``.  Purely
    informational — a client can crash and later ``resume`` from that path.
``degraded``
    Fault event (:class:`DegradedReply`): the session fell back from
    coalesced batched bounding to session-local bounding after a fused
    launch exhausted its retries.  The solve continues and stays exact;
    only the cross-session coalescing is lost.

Invariants
----------
* Every request carries a client-chosen ``request_id``; every reply echoes
  it, so one connection can multiplex any number of in-flight requests.
* ``decode(encode(message))`` round-trips every message type bit-for-bit
  (``tests/test_service_protocol.py`` pins this).
* Unknown ``type`` fields and malformed JSON raise :class:`ProtocolError`
  on decode — a server turns that into an ``error`` reply instead of
  dropping the connection.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

if TYPE_CHECKING:  # annotation-only: the module stays solver-free at runtime
    from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "ProtocolError",
    "SUPPORTED_SNAPSHOT_VERSIONS",
    "InstanceSpec",
    "SolveParams",
    "SolveRequest",
    "CancelRequest",
    "StatusRequest",
    "ResumeRequest",
    "AcceptedReply",
    "OverloadedReply",
    "CancelledReply",
    "ErrorReply",
    "ResultReply",
    "StatusReply",
    "CheckpointReply",
    "DegradedReply",
    "Message",
    "encode",
    "decode",
]

#: Snapshot header ``format_version`` values this protocol revision accepts
#: in ``resume`` requests.  Kept as a local literal (NOT imported from
#: :mod:`repro.bb.snapshot`) so the protocol module stays importable
#: without the solver stack; ``tests/test_service_protocol.py`` pins it
#: against ``snapshot.SNAPSHOT_FORMAT_VERSION``.
SUPPORTED_SNAPSHOT_VERSIONS = (1,)


class ProtocolError(ValueError):
    """A wire line could not be decoded into a known message.

    Raised by :func:`decode` for malformed JSON, missing/unknown ``type``
    fields, or payloads whose fields do not match the message dataclass.
    Servers answer the offending line with an ``error`` reply.
    """


@dataclass(frozen=True)
class InstanceSpec:
    """Portable description of the flow-shop instance a request wants solved.

    Two kinds are supported: ``"taillard"`` names a Taillard-class instance
    by ``(jobs, machines, index)`` and is regenerated server-side (nothing
    but three integers travels on the wire); ``"explicit"`` ships the full
    ``processing_times`` matrix (jobs × machines, row-major lists).

    Invariants: ``kind`` is one of the two literals above; a taillard spec
    has ``jobs``/``machines`` set; an explicit spec has a non-empty
    rectangular ``processing_times``.
    """

    kind: str = "taillard"
    jobs: Optional[int] = None
    machines: Optional[int] = None
    index: int = 1
    processing_times: Optional[list[list[int]]] = None
    name: Optional[str] = None

    @classmethod
    def taillard(cls, jobs: int, machines: int, index: int = 1) -> "InstanceSpec":
        """Spec for the Taillard-style instance ``(jobs, machines, index)``."""
        return cls(kind="taillard", jobs=jobs, machines=machines, index=index)

    @classmethod
    def explicit(
        cls, processing_times: Sequence[Sequence[int]], name: Optional[str] = None
    ) -> "InstanceSpec":
        """Spec shipping an explicit jobs × machines processing-time matrix."""
        matrix = [[int(v) for v in row] for row in processing_times]
        return cls(kind="explicit", processing_times=matrix, name=name)

    def to_instance(self) -> "FlowShopInstance":
        """Materialize the :class:`~repro.flowshop.instance.FlowShopInstance`.

        Imports lazily so the protocol module stays importable without the
        solver stack (thin clients only need the schema).
        """
        if self.kind == "taillard":
            if self.jobs is None or self.machines is None:
                raise ProtocolError("taillard spec requires 'jobs' and 'machines'")
            from repro.flowshop.taillard import taillard_instance

            return taillard_instance(int(self.jobs), int(self.machines), index=int(self.index))
        if self.kind == "explicit":
            if not self.processing_times:
                raise ProtocolError("explicit spec requires 'processing_times'")
            from repro.flowshop.instance import FlowShopInstance

            return FlowShopInstance(self.processing_times, name=self.name)
        raise ProtocolError(f"unknown instance kind {self.kind!r}")


@dataclass(frozen=True)
class SolveParams:
    """Per-session solver knobs a request may set (all optional).

    The subset of :class:`~repro.bb.sequential.SequentialBranchAndBound`'s
    configuration that makes sense per request: selection strategy, kernel
    revision, the NEH/explicit initial bound, the session's private
    :class:`~repro.bb.driver.SearchLimits` budgets, and an optional
    per-request checkpoint (``checkpoint_path`` + ``checkpoint_every``
    driver steps — overrides the service-wide ``checkpoint_dir``).
    ``None`` everywhere means "the engine's defaults" — which keeps
    service sessions bit-identical to a default sequential solve.
    """

    selection: str = "best-first"
    kernel: str = "v2"
    initial_upper_bound: Optional[float] = None
    max_nodes: Optional[int] = None
    max_time_s: Optional[float] = None
    max_frontier_nodes: Optional[int] = None
    frontier_index: str = "segmented"
    #: offload execution mode: "sync" (default) or "async" (the driver's
    #: two-slot worker-thread pipeline; results are bit-identical)
    overlap: str = "sync"
    checkpoint_path: Optional[str] = None
    checkpoint_every: Optional[int] = None


@dataclass(frozen=True)
class SolveRequest:
    """Open a session solving ``instance`` under ``params``.

    ``request_id`` is chosen by the client and echoed by every reply about
    this session; ``client_id`` is the fair-share scheduling bucket (all
    sessions of one client share one round-robin slot).
    """

    request_id: str
    instance: InstanceSpec
    params: SolveParams = field(default_factory=SolveParams)
    client_id: str = "anonymous"
    type: str = "solve"


@dataclass(frozen=True)
class CancelRequest:
    """Cancel the session opened by ``request_id`` (queued or running)."""

    request_id: str
    type: str = "cancel"


@dataclass(frozen=True)
class StatusRequest:
    """Ask for service health and dispatcher statistics."""

    request_id: str = "status"
    type: str = "status"


@dataclass(frozen=True)
class ResumeRequest:
    """Continue a checkpointed solve from ``snapshot_path`` on the server.

    ``header`` optionally carries the snapshot's JSON header as the client
    read it; when present, :func:`decode` rejects unsupported
    ``format_version`` values immediately (see
    :data:`SUPPORTED_SNAPSHOT_VERSIONS`), so a stale client cannot make
    the server load a snapshot it cannot understand.
    """

    request_id: str
    snapshot_path: str
    header: Optional[dict[str, Any]] = None
    client_id: str = "anonymous"
    type: str = "resume"


@dataclass(frozen=True)
class AcceptedReply:
    """The request was admitted; ``session_id`` names the opened session."""

    request_id: str
    session_id: int
    type: str = "accepted"


@dataclass(frozen=True)
class OverloadedReply:
    """Backpressure: the bounded admission queue is full; retry later.

    ``queued`` is the number of sessions waiting when the request was
    rejected and ``limit`` the queue bound — clients can use the pair to
    pick a backoff.
    """

    request_id: str
    queued: int
    limit: int
    type: str = "overloaded"


@dataclass(frozen=True)
class CancelledReply:
    """Acknowledgement of a ``cancel`` request (the result still follows)."""

    request_id: str
    was_running: bool
    type: str = "cancelled"


@dataclass(frozen=True)
class ErrorReply:
    """The request could not be processed; ``message`` says why."""

    request_id: str
    message: str
    type: str = "error"


@dataclass(frozen=True)
class ResultReply:
    """Terminal message of one session.

    ``makespan``/``order``/``proved_optimal`` mirror
    :class:`~repro.bb.sequential.BBResult`; ``cancelled`` marks sessions
    ended by a ``cancel`` request (their partial result is still reported);
    ``stats`` is the session's ``SearchStats.as_dict()``.
    """

    request_id: str
    session_id: int
    makespan: int
    order: list[int]
    proved_optimal: bool
    cancelled: bool = False
    stats: dict[str, Any] = field(default_factory=dict)
    type: str = "result"


@dataclass(frozen=True)
class StatusReply:
    """Service health snapshot: session gauges plus dispatcher statistics."""

    request_id: str
    active_sessions: int
    queued_sessions: int
    completed_sessions: int
    dispatcher: dict[str, Any] = field(default_factory=dict)
    type: str = "status_reply"


@dataclass(frozen=True)
class CheckpointReply:
    """Progress event: the session wrote snapshot ``sequence`` to ``path``.

    ``steps`` is the driver-step count at capture time.  A client that
    loses its server can later send a ``resume`` request naming ``path``.
    """

    request_id: str
    session_id: int
    sequence: int
    path: str
    steps: int = 0
    type: str = "checkpoint"


@dataclass(frozen=True)
class DegradedReply:
    """Fault event: the session fell back to local (uncoalesced) bounding.

    ``reason`` describes the launch failure that exhausted the retry
    budget.  The solve continues bit-exactly; the event is accounting
    (mirrored in ``DispatchStats.n_degraded``), not an error.
    """

    request_id: str
    session_id: int
    reason: str
    type: str = "degraded"


#: Every message that can travel on the wire, in either direction.
Message = Union[
    SolveRequest,
    CancelRequest,
    StatusRequest,
    ResumeRequest,
    AcceptedReply,
    OverloadedReply,
    CancelledReply,
    ErrorReply,
    ResultReply,
    StatusReply,
    CheckpointReply,
    DegradedReply,
]

_MESSAGE_TYPES: dict[str, type[Any]] = {
    "solve": SolveRequest,
    "cancel": CancelRequest,
    "status": StatusRequest,
    "resume": ResumeRequest,
    "accepted": AcceptedReply,
    "overloaded": OverloadedReply,
    "cancelled": CancelledReply,
    "error": ErrorReply,
    "result": ResultReply,
    "status_reply": StatusReply,
    "checkpoint": CheckpointReply,
    "degraded": DegradedReply,
}


def encode(message: Message) -> str:
    """Encode a message dataclass as one JSON line (no trailing newline).

    The inverse of :func:`decode`; nested dataclasses
    (:class:`InstanceSpec`, :class:`SolveParams`) are flattened to plain
    objects.
    """
    payload = asdict(message)
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def decode(line: str) -> Message:
    """Decode one wire line into its message dataclass.

    Raises :class:`ProtocolError` for malformed JSON, an unknown or missing
    ``type``, or fields that do not match the message's schema.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    kind = payload.get("type")
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message type {kind!r}")
    if cls is SolveRequest:
        instance = payload.get("instance")
        if not isinstance(instance, dict):
            raise ProtocolError("solve request requires an 'instance' object")
        payload = dict(payload)
        try:
            payload["instance"] = InstanceSpec(**instance)
            payload["params"] = SolveParams(**payload.get("params") or {})
        except TypeError as exc:
            raise ProtocolError(f"bad solve payload: {exc}") from exc
    if cls is ResumeRequest:
        header = payload.get("header")
        if header is not None:
            if not isinstance(header, dict):
                raise ProtocolError("resume 'header' must be an object when given")
            version = header.get("format_version")
            if version not in SUPPORTED_SNAPSHOT_VERSIONS:
                raise ProtocolError(
                    f"unsupported snapshot format_version {version!r} "
                    f"(supported: {SUPPORTED_SNAPSHOT_VERSIONS})"
                )
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(f"bad {kind!r} payload: {exc}") from exc
