"""JSON-lines TCP front of the solve service (the ``repro serve`` entry).

:class:`SolveServer` binds an asyncio TCP listener and adapts the wire
protocol (:mod:`repro.service.protocol`) onto one shared
:class:`~repro.service.service.SolveService`.  Per connection it reads one
JSON object per line, dispatches by message type, and writes replies back
as JSON lines — replies of concurrent requests interleave freely, matched
to their request by the echoed ``request_id`` (the client's job to
demultiplex; :class:`~repro.service.client.ServiceClient` does).

Error containment: a malformed line answers with an ``error`` reply and
the connection stays up; only EOF or a transport error ends a connection.
``request_id`` namespacing is per-connection (two connections may both use
``"req-1"``) — the server prefixes ids internally before they reach the
shared service.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Callable, Optional

from repro.bb.snapshot import SnapshotError
from repro.service import protocol
from repro.service.protocol import (
    AcceptedReply,
    CancelledReply,
    CancelRequest,
    CheckpointReply,
    DegradedReply,
    ErrorReply,
    OverloadedReply,
    ProtocolError,
    ResultReply,
    ResumeRequest,
    SolveRequest,
    StatusReply,
    StatusRequest,
)
from repro.service.service import ServiceOverloaded, SolveService

__all__ = ["SolveServer"]


class SolveServer:
    """Serve :class:`SolveService` over newline-delimited JSON on TCP.

    Parameters
    ----------
    service:
        The (started) service instance requests are forwarded to.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start` — how the tests run hermetically).
    """

    def __init__(self, service: SolveService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_ids = itertools.count(1)
        # scoped request id -> (connection send, connection-local request id);
        # lets service events (checkpoint/degraded) flow back to their client.
        self._event_routes: dict[str, tuple[Callable, str]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._prior_on_event: Optional[Callable[[str, str, dict], None]] = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listener and begin accepting connections."""
        if self._server is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._prior_on_event = self.service.on_event
        self.service.on_event = self._forward_event
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def close(self) -> None:
        """Stop accepting and close the listener (service stays up)."""
        if self._server is None:
            return
        self.service.on_event = self._prior_on_event
        self._prior_on_event = None
        self._loop = None
        self._event_routes.clear()
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "SolveServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled (the CLI's main loop)."""
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection's read loop; replies share one write lock."""
        conn = next(self._conn_ids)
        write_lock = asyncio.Lock()

        async def send(message) -> None:
            async with write_lock:
                writer.write(protocol.encode(message).encode() + b"\n")
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.decode().strip()
                if not line:
                    continue
                try:
                    message = protocol.decode(line)
                except ProtocolError as exc:
                    await send(ErrorReply(request_id="?", message=str(exc)))
                    continue
                if isinstance(message, SolveRequest):
                    await self._handle_solve(conn, message, send)
                elif isinstance(message, ResumeRequest):
                    await self._handle_resume(conn, message, send)
                elif isinstance(message, CancelRequest):
                    await self._handle_cancel(conn, message, send)
                elif isinstance(message, StatusRequest):
                    await self._handle_status(message, send)
                else:
                    await send(
                        ErrorReply(
                            request_id=getattr(message, "request_id", "?"),
                            message=f"unexpected message type {message.type!r}",
                        )
                    )
        except (ConnectionError, asyncio.IncompleteReadError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _scoped(self, conn: int, request_id: str) -> str:
        """Namespace a connection-local request id for the shared service."""
        return f"c{conn}:{request_id}"

    async def _handle_solve(self, conn: int, request: SolveRequest, send) -> None:
        """Admit a solve; follow up with its ``result`` when the session ends."""
        scoped = self._scoped(conn, request.request_id)
        # route events before admission: a fast session may checkpoint
        # between submit() returning and the accepted reply going out
        self._event_routes[scoped] = (send, request.request_id)
        try:
            instance = request.instance.to_instance()
            session_id = await self.service.submit(
                scoped,
                instance,
                request.params,
                client_id=request.client_id,
            )
        except ServiceOverloaded as exc:
            self._event_routes.pop(scoped, None)
            await send(
                OverloadedReply(
                    request_id=request.request_id, queued=exc.queued, limit=exc.limit
                )
            )
            return
        except (ProtocolError, ValueError, KeyError) as exc:
            self._event_routes.pop(scoped, None)
            await send(ErrorReply(request_id=request.request_id, message=str(exc)))
            return
        await send(AcceptedReply(request_id=request.request_id, session_id=session_id))
        self._spawn_result_delivery(scoped, request.request_id, send)

    async def _handle_resume(self, conn: int, request: ResumeRequest, send) -> None:
        """Admit a solve resumed from a snapshot file on the server's host."""
        scoped = self._scoped(conn, request.request_id)
        self._event_routes[scoped] = (send, request.request_id)
        try:
            session_id = await self.service.submit_resume(
                scoped, request.snapshot_path, client_id=request.client_id
            )
        except ServiceOverloaded as exc:
            self._event_routes.pop(scoped, None)
            await send(
                OverloadedReply(
                    request_id=request.request_id, queued=exc.queued, limit=exc.limit
                )
            )
            return
        except (SnapshotError, ProtocolError, ValueError, KeyError, OSError) as exc:
            self._event_routes.pop(scoped, None)
            await send(ErrorReply(request_id=request.request_id, message=str(exc)))
            return
        await send(AcceptedReply(request_id=request.request_id, session_id=session_id))
        self._spawn_result_delivery(scoped, request.request_id, send)

    def _spawn_result_delivery(self, scoped: str, request_id: str, send) -> None:
        """Follow up with the request's ``result`` when its session ends."""

        async def deliver_result() -> None:
            try:
                try:
                    result = await self.service.result(scoped)
                except Exception as exc:
                    await send(ErrorReply(request_id=request_id, message=str(exc)))
                    return
                await send(
                    ResultReply(
                        request_id=request_id,
                        session_id=result.session_id,
                        makespan=result.makespan,
                        order=list(result.order),
                        proved_optimal=result.proved_optimal,
                        cancelled=result.cancelled,
                        stats=result.stats_dict(),
                    )
                )
            finally:
                self._event_routes.pop(scoped, None)

        asyncio.get_running_loop().create_task(deliver_result())

    # ------------------------------------------------------------------ #
    #  event forwarding (checkpoint / degraded frames)
    # ------------------------------------------------------------------ #
    def _forward_event(self, request_id: str, kind: str, payload: dict) -> None:
        """Service observability callback — may fire on any worker thread.

        Maps the scoped request id back to the owning connection and posts
        a ``checkpoint``/``degraded`` frame onto the loop thread.  Other
        event kinds (``restart``) stay server-side.
        """
        prior = self._prior_on_event
        if prior is not None:
            prior(request_id, kind, payload)
        loop = self._loop
        route = self._event_routes.get(request_id)
        if loop is None or route is None:
            return
        send, local_id = route
        if kind == "checkpoint":
            message: object = CheckpointReply(
                request_id=local_id,
                session_id=int(payload.get("session_id", 0)),
                sequence=int(payload.get("sequence", 0)),
                path=str(payload.get("path", "")),
                steps=int(payload.get("steps", 0)),
            )
        elif kind == "degraded":
            message = DegradedReply(
                request_id=local_id,
                session_id=int(payload.get("session_id", 0)),
                reason=str(payload.get("reason", "")),
            )
        else:
            return
        try:
            loop.call_soon_threadsafe(self._post_event, send, message)
        except RuntimeError:  # loop already closed; event is best-effort
            return

    def _post_event(self, send, message) -> None:
        """Loop-thread trampoline: send one event frame, tolerate EOF."""

        async def send_safely() -> None:
            try:
                await send(message)
            except (ConnectionError, OSError):  # client went away mid-event
                pass

        asyncio.get_running_loop().create_task(send_safely())

    async def _handle_cancel(self, conn: int, request: CancelRequest, send) -> None:
        """Acknowledge a cancel; the session's ``result`` still follows."""
        try:
            was_running = await self.service.cancel(self._scoped(conn, request.request_id))
        except KeyError as exc:
            await send(ErrorReply(request_id=request.request_id, message=str(exc)))
            return
        await send(CancelledReply(request_id=request.request_id, was_running=was_running))

    async def _handle_status(self, request: StatusRequest, send) -> None:
        """Answer with the service's gauges and dispatcher statistics."""
        snapshot = self.service.stats()
        await send(
            StatusReply(
                request_id=request.request_id,
                active_sessions=snapshot["active_sessions"],
                queued_sessions=snapshot["queued_sessions"],
                completed_sessions=snapshot["completed_sessions"],
                dispatcher=snapshot["dispatcher"],
            )
        )
