"""Async client for the solve service's JSON-lines TCP protocol.

:class:`ServiceClient` is the lightweight counterpart of
:class:`~repro.service.server.SolveServer`, used by the tests and the
example script (and usable as a template for clients in other languages —
the whole protocol is twelve JSON message shapes, see
:mod:`repro.service.protocol`).

One background reader task demultiplexes the connection: every incoming
reply is routed to the queue of the ``request_id`` it echoes, so any
number of solves can be in flight concurrently over one socket.
:meth:`ServiceClient.solve` packages the common submit → accepted →
result round trip (skipping interleaved ``checkpoint``/``degraded``
event frames); the lower-level :meth:`submit` / :meth:`next_reply`
pair exposes the individual messages (how the backpressure and
cancellation tests watch ``overloaded``/``cancelled`` replies arrive).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from typing import Optional

logger = logging.getLogger(__name__)

from repro.service import protocol
from repro.service.protocol import (
    CancelRequest,
    InstanceSpec,
    ResumeRequest,
    SolveParams,
    SolveRequest,
    StatusReply,
    StatusRequest,
)

#: Event frames that may interleave before a request's terminal reply.
_EVENT_TYPES = frozenset({"checkpoint", "degraded"})

__all__ = ["ServiceClient"]


class ServiceClient:
    """Connect to a :class:`SolveServer` and multiplex requests over it.

    Usage::

        client = await ServiceClient.connect("127.0.0.1", port)
        reply = await client.solve(InstanceSpec.taillard(20, 5))
        await client.close()

    All coroutines are loop-thread only; replies for a request are
    delivered in server order through a per-request queue.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._request_ids = itertools.count(1)
        self._inboxes: dict[str, asyncio.Queue] = {}
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a connection and start the demultiplexing reader."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Stop the reader task and close the socket."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        except Exception as exc:
            # the reader died on a bad frame or broken pipe; we are
            # closing the connection anyway, so record and move on
            logger.debug("reader task ended with %r during close", exc)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        """Route every incoming reply to its ``request_id`` inbox."""
        while True:
            line = await self._reader.readline()
            if not line:
                break
            message = protocol.decode(line.decode())
            inbox = self._inboxes.get(message.request_id)
            if inbox is not None:
                inbox.put_nowait(message)

    async def _send(self, message) -> None:
        self._writer.write(protocol.encode(message).encode() + b"\n")
        await self._writer.drain()

    def _inbox(self, request_id: str) -> asyncio.Queue:
        inbox = self._inboxes.get(request_id)
        if inbox is None:
            inbox = asyncio.Queue()
            self._inboxes[request_id] = inbox
        return inbox

    # ------------------------------------------------------------------ #
    async def submit(
        self,
        instance: InstanceSpec,
        params: Optional[SolveParams] = None,
        client_id: str = "anonymous",
        request_id: Optional[str] = None,
    ) -> str:
        """Send one ``solve`` request; returns its ``request_id``.

        Replies (``accepted``/``overloaded``/``error``, then ``result``)
        are collected by the reader and retrieved with :meth:`next_reply`.
        """
        if request_id is None:
            request_id = f"req-{next(self._request_ids)}"
        self._inbox(request_id)  # register before the reply can race in
        await self._send(
            SolveRequest(
                request_id=request_id,
                instance=instance,
                params=params if params is not None else SolveParams(),
                client_id=client_id,
            )
        )
        return request_id

    async def next_reply(self, request_id: str, timeout: Optional[float] = 30.0):
        """Await the next reply echoing ``request_id`` (server order).

        On timeout the per-request inbox is discarded — an abandoned
        request must not keep queueing (and leaking) late replies.
        """
        inbox = self._inbox(request_id)
        try:
            return await asyncio.wait_for(inbox.get(), timeout=timeout)
        except asyncio.TimeoutError:
            self._inboxes.pop(request_id, None)
            raise

    async def solve(
        self,
        instance: InstanceSpec,
        params: Optional[SolveParams] = None,
        client_id: str = "anonymous",
        timeout: Optional[float] = 60.0,
    ):
        """Submit and await the terminal reply of one solve.

        Returns the :class:`~repro.service.protocol.ResultReply` —
        or the ``overloaded``/``error`` reply if the request was rejected
        (callers check ``reply.type``).
        """
        request_id = await self.submit(instance, params, client_id=client_id)
        return await self._await_terminal(request_id, timeout)

    async def _await_terminal(self, request_id: str, timeout: Optional[float]):
        """Await the terminal reply, skipping interleaved event frames.

        Event frames may even precede the ``accepted`` reply (they are
        posted by worker threads racing the admission reply), so they
        are skipped on both sides of it.
        """
        while True:
            first = await self.next_reply(request_id, timeout=timeout)
            if first.type not in _EVENT_TYPES:
                break
        if first.type != "accepted":
            return first
        while True:
            reply = await self.next_reply(request_id, timeout=timeout)
            if reply.type not in _EVENT_TYPES:
                return reply

    async def submit_resume(
        self,
        snapshot_path: str,
        header: Optional[dict] = None,
        client_id: str = "anonymous",
        request_id: Optional[str] = None,
    ) -> str:
        """Send one ``resume`` request; returns its ``request_id``.

        ``snapshot_path`` names a snapshot file on the *server's* host;
        ``header`` optionally carries its parsed snapshot header so the
        server can reject unsupported format versions before touching
        the file.
        """
        if request_id is None:
            request_id = f"req-{next(self._request_ids)}"
        self._inbox(request_id)  # register before the reply can race in
        await self._send(
            ResumeRequest(
                request_id=request_id,
                snapshot_path=snapshot_path,
                header=header,
                client_id=client_id,
            )
        )
        return request_id

    async def resume(
        self,
        snapshot_path: str,
        header: Optional[dict] = None,
        client_id: str = "anonymous",
        timeout: Optional[float] = 60.0,
    ):
        """Submit a ``resume`` and await its terminal reply.

        Mirrors :meth:`solve`: returns the ``result`` reply, or the
        ``overloaded``/``error`` reply if the request was rejected.
        """
        request_id = await self.submit_resume(
            snapshot_path, header=header, client_id=client_id
        )
        return await self._await_terminal(request_id, timeout)

    async def cancel(self, request_id: str, timeout: Optional[float] = 30.0):
        """Cancel ``request_id``; returns the ``cancelled`` (or error) reply."""
        await self._send(CancelRequest(request_id=request_id))
        return await self.next_reply(request_id, timeout=timeout)

    async def status(self, timeout: Optional[float] = 30.0) -> StatusReply:
        """Fetch the service's status snapshot."""
        request_id = f"status-{next(self._request_ids)}"
        self._inbox(request_id)
        await self._send(StatusRequest(request_id=request_id))
        return await self.next_reply(request_id, timeout=timeout)
