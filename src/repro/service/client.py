"""Async client for the solve service's JSON-lines TCP protocol.

:class:`ServiceClient` is the lightweight counterpart of
:class:`~repro.service.server.SolveServer`, used by the tests and the
example script (and usable as a template for clients in other languages —
the whole protocol is nine JSON message shapes, see
:mod:`repro.service.protocol`).

One background reader task demultiplexes the connection: every incoming
reply is routed to the queue of the ``request_id`` it echoes, so any
number of solves can be in flight concurrently over one socket.
:meth:`ServiceClient.solve` packages the common submit → accepted →
result round trip; the lower-level :meth:`submit` / :meth:`next_reply`
pair exposes the individual messages (how the backpressure and
cancellation tests watch ``overloaded``/``cancelled`` replies arrive).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Optional

from repro.service import protocol
from repro.service.protocol import (
    CancelRequest,
    InstanceSpec,
    SolveParams,
    SolveRequest,
    StatusReply,
    StatusRequest,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """Connect to a :class:`SolveServer` and multiplex requests over it.

    Usage::

        client = await ServiceClient.connect("127.0.0.1", port)
        reply = await client.solve(InstanceSpec.taillard(20, 5))
        await client.close()

    All coroutines are loop-thread only; replies for a request are
    delivered in server order through a per-request queue.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._request_ids = itertools.count(1)
        self._inboxes: dict[str, asyncio.Queue] = {}
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a connection and start the demultiplexing reader."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Stop the reader task and close the socket."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        """Route every incoming reply to its ``request_id`` inbox."""
        while True:
            line = await self._reader.readline()
            if not line:
                break
            message = protocol.decode(line.decode())
            inbox = self._inboxes.get(message.request_id)
            if inbox is not None:
                inbox.put_nowait(message)

    async def _send(self, message) -> None:
        self._writer.write(protocol.encode(message).encode() + b"\n")
        await self._writer.drain()

    def _inbox(self, request_id: str) -> asyncio.Queue:
        inbox = self._inboxes.get(request_id)
        if inbox is None:
            inbox = asyncio.Queue()
            self._inboxes[request_id] = inbox
        return inbox

    # ------------------------------------------------------------------ #
    async def submit(
        self,
        instance: InstanceSpec,
        params: Optional[SolveParams] = None,
        client_id: str = "anonymous",
        request_id: Optional[str] = None,
    ) -> str:
        """Send one ``solve`` request; returns its ``request_id``.

        Replies (``accepted``/``overloaded``/``error``, then ``result``)
        are collected by the reader and retrieved with :meth:`next_reply`.
        """
        if request_id is None:
            request_id = f"req-{next(self._request_ids)}"
        self._inbox(request_id)  # register before the reply can race in
        await self._send(
            SolveRequest(
                request_id=request_id,
                instance=instance,
                params=params if params is not None else SolveParams(),
                client_id=client_id,
            )
        )
        return request_id

    async def next_reply(self, request_id: str, timeout: Optional[float] = 30.0):
        """Await the next reply echoing ``request_id`` (server order)."""
        inbox = self._inbox(request_id)
        return await asyncio.wait_for(inbox.get(), timeout=timeout)

    async def solve(
        self,
        instance: InstanceSpec,
        params: Optional[SolveParams] = None,
        client_id: str = "anonymous",
        timeout: Optional[float] = 60.0,
    ):
        """Submit and await the terminal reply of one solve.

        Returns the :class:`~repro.service.protocol.ResultReply` —
        or the ``overloaded``/``error`` reply if the request was rejected
        (callers check ``reply.type``).
        """
        request_id = await self.submit(instance, params, client_id=client_id)
        first = await self.next_reply(request_id, timeout=timeout)
        if first.type != "accepted":
            return first
        return await self.next_reply(request_id, timeout=timeout)

    async def cancel(self, request_id: str, timeout: Optional[float] = 30.0):
        """Cancel ``request_id``; returns the ``cancelled`` (or error) reply."""
        await self._send(CancelRequest(request_id=request_id))
        return await self.next_reply(request_id, timeout=timeout)

    async def status(self, timeout: Optional[float] = 30.0) -> StatusReply:
        """Fetch the service's status snapshot."""
        request_id = f"status-{next(self._request_ids)}"
        self._inbox(request_id)
        await self._send(StatusRequest(request_id=request_id))
        return await self.next_reply(request_id, timeout=timeout)
