"""Solve-as-a-service: concurrent sessions with cross-session batched bounding.

The paper amortizes kernel-launch overhead by pooling a search's nodes into
big bounding batches; this package applies the same lever ACROSS searches.
Each ``solve`` request opens a :class:`~repro.service.session.SolveSession`
with its own frontier, every session's bounding batches park on one shared
:class:`~repro.service.dispatch.BatchDispatcher`, and the dispatcher fuses
what is pending across sessions into single kernel launches — fewer, fuller
launches under concurrent load, with results bit-identical to stand-alone
solves.

Layering (see ``docs/SERVING.md`` for the full design):

- :mod:`~repro.service.protocol` — wire messages + JSON-lines codec;
- :mod:`~repro.service.dispatch` — flush policy, dispatcher, parking offload;
- :mod:`~repro.service.session` — one request's search;
- :mod:`~repro.service.scheduler` — bounded fair-share admission;
- :mod:`~repro.service.service` — asyncio orchestration (in-process API);
- :mod:`~repro.service.server` / :mod:`~repro.service.client` — TCP front
  (``repro serve``) and the matching async client.
"""

from repro.service.client import ServiceClient
from repro.service.dispatch import (
    BatchDispatcher,
    BatchingOffload,
    DispatchStats,
    FlushPolicy,
    SessionCancelled,
)
from repro.service.protocol import (
    InstanceSpec,
    ProtocolError,
    SolveParams,
    SolveRequest,
)
from repro.service.scheduler import FairShareScheduler, SchedulerFull
from repro.service.server import SolveServer
from repro.service.service import ServiceOverloaded, SolveService
from repro.service.session import SessionConfig, SessionResult, SolveSession

__all__ = [
    "BatchDispatcher",
    "BatchingOffload",
    "DispatchStats",
    "FlushPolicy",
    "SessionCancelled",
    "InstanceSpec",
    "ProtocolError",
    "SolveParams",
    "SolveRequest",
    "FairShareScheduler",
    "SchedulerFull",
    "ServiceClient",
    "ServiceOverloaded",
    "SolveServer",
    "SolveService",
    "SessionConfig",
    "SessionResult",
    "SolveSession",
]
