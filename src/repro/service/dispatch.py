"""Cross-session batched bounding: the dispatcher and its offload backend.

The paper's central lever is amortizing per-launch overhead by pooling many
B&B nodes into one bounding launch.  The service applies the same lever one
level up: *concurrent solve sessions* each produce small bounding batches
(the single-step driver shape bounds one sibling set per pop), and the
:class:`BatchDispatcher` coalesces the batches that are pending **across
sessions** into single fused kernel launches.

The mechanism is a rendezvous between N session threads and one dispatcher
thread:

* Every session runs its (synchronous) :class:`~repro.bb.driver.SearchDriver`
  loop in a worker thread, configured with a :class:`BatchingOffload` as its
  bounding backend.  The offload's ``bound_block`` does not evaluate
  anything — it submits the block to the dispatcher and **parks on a
  future** until the dispatcher flushes.
* The dispatcher thread collects pending requests and flushes them as ONE
  fused launch per *instance group* when its :class:`FlushPolicy` fires:

  - ``all-parked`` — every registered running session has a request parked,
    so nothing more can arrive until somebody is released: flush now.  This
    is also why a **lone session adds no latency** over a serial solve —
    its every request satisfies the condition immediately.
  - ``max-batch`` — the pending rows reached ``max_batch_nodes``.
  - ``timeout`` — the oldest pending request waited ``max_wait_s`` (bounds
    the latency a straggler session can impose on its peers).

Bit-exactness: a fused launch concatenates the blocks' ``(scheduled_mask,
release)`` arrays and evaluates them with the same batched kernel a
stand-alone solve would use.  Every kernel path in this repository returns
bit-identical bounds for a given row regardless of the surrounding batch
(the PR 1/PR 3 invariant), so coalescing changes *how many launches* are
issued — never a single bound value, and therefore never a session's
explored tree, result or counters (pinned by ``tests/test_service.py``
against the sequential-engine golden configs).

Launch accounting: requests for different instances cannot share a kernel
evaluation (the bound's precomputed tensors are per-instance), so a flush
issues one launch per distinct ``(instance, kernel, one-machine)`` group
and :class:`DispatchStats` counts honestly: ``n_launches`` is the number
of kernel invocations, ``n_requests`` the number of ``bound_block`` calls
they replaced.  ``benchmarks/bench_service.py`` asserts the ≥2x
launch-count reduction for 8 concurrent sessions.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.bb.offload import SlotWorker
from repro.flowshop.bounds import LowerBoundData, get_batch_kernel

logger = logging.getLogger(__name__)

__all__ = [
    "SessionCancelled",
    "FlushPolicy",
    "DispatchStats",
    "BatchDispatcher",
    "BatchingOffload",
]


class SessionCancelled(Exception):
    """Raised inside a session's driver thread to unwind a cancelled solve.

    Set as the exception of a parked request's future (cancellation
    mid-batch) or raised by the session's own ``on_select`` hook; the
    session's ``run`` catches it and reports a cancelled result.
    """


@dataclass(frozen=True)
class FlushPolicy:
    """When the dispatcher turns pending requests into a fused launch.

    ``max_wait_s`` bounds how long the oldest parked session may wait for
    peers to join the batch; ``max_batch_nodes`` bounds the fused pool size
    (mirroring the paper's pool-size knob — past the cache-friendly size,
    bigger launches stop paying).  The ``all-parked`` condition is not
    configurable: flushing when every running session is parked is always
    right, because no further request can arrive until one is released.
    """

    max_wait_s: float = 0.005
    max_batch_nodes: int = 65536

    def __post_init__(self) -> None:
        if self.max_wait_s <= 0:
            raise ValueError("max_wait_s must be positive")
        if self.max_batch_nodes < 1:
            raise ValueError("max_batch_nodes must be >= 1")


@dataclass
class DispatchStats:
    """Coalescing statistics of one dispatcher (cumulative).

    ``n_requests``/``n_rows`` count the ``bound_block`` calls (and their
    nodes) that went through the dispatcher; ``n_launches`` counts the
    kernel invocations actually issued — the launch-amortization win is
    ``n_requests / n_launches``.  ``n_flushes`` counts flush cycles (one
    flush issues one launch per instance group); ``flush_reasons`` breaks
    them down by trigger; ``max_requests_coalesced`` is the largest number
    of requests ever fused into a single launch.
    """

    n_requests: int = 0
    n_rows: int = 0
    n_launches: int = 0
    n_flushes: int = 0
    n_cancelled: int = 0
    #: failed fused launches retried before giving up on the batch
    n_retries: int = 0
    #: sessions that fell back to local (uncoalesced) bounding after a
    #: fused launch exhausted its retries — correctness preserved
    n_degraded: int = 0
    max_requests_coalesced: int = 1
    max_rows_coalesced: int = 0
    flush_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def requests_per_launch(self) -> float:
        """Average number of ``bound_block`` calls amortized per launch."""
        if self.n_launches == 0:
            return 0.0
        return self.n_requests / self.n_launches

    def as_dict(self) -> dict[str, object]:
        """Plain dictionary (for status replies, reports and JSON dumps)."""
        return {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "n_launches": self.n_launches,
            "n_flushes": self.n_flushes,
            "n_cancelled": self.n_cancelled,
            "n_retries": self.n_retries,
            "n_degraded": self.n_degraded,
            "requests_per_launch": self.requests_per_launch,
            "max_requests_coalesced": self.max_requests_coalesced,
            "max_rows_coalesced": self.max_rows_coalesced,
            "flush_reasons": dict(self.flush_reasons),
        }


@dataclass
class _Pending:
    """One parked ``bound_block`` call waiting for the next flush."""

    token: object
    group_key: tuple
    data: LowerBoundData
    block: object  # NodeBlock (duck-typed: scheduled_mask/release/lower_bound)
    kernel: str
    include_one_machine: bool
    future: Future
    submitted_at: float


class BatchDispatcher:
    """Coalesces pending bounding batches across sessions into fused launches.

    Parameters
    ----------
    policy:
        The :class:`FlushPolicy` (max-wait / max-batch thresholds).
    autostart:
        Start the background dispatcher thread immediately (default).
        Tests pass ``False`` and drive :meth:`flush_now` by hand to pin
        flush-policy edge cases deterministically.
    launch_timeout_s:
        Per-launch watchdog: when set, a fused kernel launch that has not
        returned after this many seconds counts as failed (the straggler
        finishes on a daemon thread; ``Future.done()`` guards make its
        late write-back a no-op).  ``None`` (default) disables the watchdog.
    max_launch_retries:
        How many times a failed fused launch is retried (same members, new
        launch) before the members' futures carry the failure and their
        sessions degrade to local bounding.  Retries are counted in
        ``DispatchStats.n_retries``.
    launch_hook:
        Called with the 1-based launch index immediately before every fused
        kernel launch (retries included).  An exception raised here fails
        the launch — this is the deterministic fault-injection seam used by
        :mod:`repro.testing.faults`.
    on_degraded:
        Called as ``on_degraded(token, reason)`` when a session falls back
        to local bounding (see :meth:`note_degraded`).
    overlap:
        ``"sync"`` (default) evaluates each coalesced batch inline on the
        pump thread; ``"async"`` hands ``(batch, reason)`` to a dedicated
        single-slot worker (:class:`~repro.bb.offload.SlotWorker`, bounded
        queue depth 1) so the pump thread keeps collecting and coalescing
        the next batch while the previous one is bounding.  The single
        worker preserves launch order and keeps kernel evaluation
        single-threaded, so results are bit-identical either way.

    Thread contract: :meth:`submit` is called from session worker threads
    and blocks nobody (the *caller* then parks on the returned future);
    kernel evaluation happens only on one thread at a time — the pump
    thread in ``"sync"`` mode, the slot worker in ``"async"`` mode (the
    pump then only collects) — so per-instance
    bound caches (:class:`~repro.flowshop.bounds.LowerBoundData`) are never
    touched concurrently.  :meth:`session_started` / :meth:`session_finished`
    maintain the running-session gauge the ``all-parked`` condition compares
    against.
    """

    def __init__(
        self,
        policy: FlushPolicy | None = None,
        autostart: bool = True,
        launch_timeout_s: float | None = None,
        max_launch_retries: int = 1,
        launch_hook: Optional[Callable[[int], None]] = None,
        on_degraded: Optional[Callable[[object, str], None]] = None,
        overlap: str = "sync",
    ):
        self.policy = policy if policy is not None else FlushPolicy()
        if launch_timeout_s is not None and launch_timeout_s <= 0:
            raise ValueError("launch_timeout_s must be positive when given")
        if max_launch_retries < 0:
            raise ValueError("max_launch_retries must be >= 0")
        if overlap not in ("sync", "async"):
            raise ValueError(f"overlap must be 'sync' or 'async', got {overlap!r}")
        self.launch_timeout_s = launch_timeout_s
        self.max_launch_retries = max_launch_retries
        self.launch_hook = launch_hook
        self.on_degraded = on_degraded
        self.stats = DispatchStats()
        #: True when :meth:`close` gave up waiting for the flush thread
        self.close_join_timed_out = False
        self._launch_counter = itertools.count(1)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        # _wakeup wraps _lock, so holding either means holding the same lock.
        self._pending: list[_Pending] = []  # guarded-by: _lock, _wakeup
        self._active_sessions = 0  # guarded-by: _lock, _wakeup
        self._closed = False  # guarded-by: _lock, _wakeup
        self._thread: threading.Thread | None = None  # guarded-by: _lock, _wakeup
        self._degraded_tokens: dict[int, str] = {}  # guarded-by: _lock, _wakeup
        self.overlap = overlap
        # Immutable after __init__ (no guard needed): the single-slot worker
        # that runs _execute off the pump thread in overlap="async" mode.
        self._slot = SlotWorker(name="bound-dispatch-slot") if overlap == "async" else None
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    #  lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the background flush thread (idempotent)."""
        with self._lock:
            if self._thread is not None or self._closed:
                return
            self._thread = threading.Thread(
                target=self._run, name="bound-dispatcher", daemon=True
            )
            self._thread.start()

    def close(self) -> None:
        """Stop the dispatcher; parked futures fail with :class:`SessionCancelled`.

        Every parked request is cancelled (via :meth:`cancel_pending`, the
        same path a per-session cancel takes) *before* the thread join, so
        no session can wait forever on a dispatcher that is shutting down.
        If the flush thread does not exit within 5 s the leak is logged and
        surfaced on :attr:`close_join_timed_out` instead of being silent.
        """
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
            self._wakeup.notify_all()
        # fail all parked futures first — one cancel_pending call per
        # distinct parked session token
        while True:
            with self._lock:
                if not self._pending:
                    break
                token = self._pending[0].token
            self.cancel_pending(token)
        # Join OUTSIDE the lock: the flush thread must acquire _wakeup to
        # observe _closed and exit, so joining it while holding the lock
        # would deadlock the shutdown.
        if thread is not None:
            thread.join(timeout=5.0)
            if thread.is_alive():
                self.close_join_timed_out = True
                logger.warning(
                    "dispatcher flush thread still alive 5s after close(); "
                    "a bounding launch is stuck — leaking the daemon thread"
                )
        # Drain the async slot last: any launch already handed off completes
        # (its futures resolve) before close() returns.
        if self._slot is not None:
            self._slot.close()

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    #  session gauge (the ``all-parked`` denominator)
    # ------------------------------------------------------------------ #
    def session_started(self) -> None:
        """Count one more running session (called before its thread starts)."""
        with self._wakeup:
            self._active_sessions += 1

    def session_finished(self) -> None:
        """A running session ended; re-evaluate the ``all-parked`` condition."""
        with self._wakeup:
            self._active_sessions = max(0, self._active_sessions - 1)
            self._wakeup.notify_all()

    @property
    def active_sessions(self) -> int:
        """Number of sessions currently registered as running."""
        with self._lock:
            return self._active_sessions

    @property
    def pending_requests(self) -> int:
        """Number of requests currently parked (at most one per session)."""
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------ #
    #  the session-facing half
    # ------------------------------------------------------------------ #
    def submit(
        self,
        token: object,
        data: LowerBoundData,
        block,
        kernel: str = "v2",
        include_one_machine: bool = False,
    ) -> Future:
        """Park one bounding batch; returns the future the caller waits on.

        ``token`` identifies the submitting session (used by
        :meth:`cancel_pending`); ``data`` is the instance's shared
        :class:`LowerBoundData` — its identity is the grouping key, so
        sessions that should coalesce must share one ``data`` object (the
        service guarantees this via its instance cache).  The future
        resolves to ``(bounds, simulated_s, measured_s)`` — the
        ``bound_block`` offload contract.
        """
        future: Future = Future()
        request = _Pending(
            token=token,
            group_key=(id(data), kernel, include_one_machine),
            data=data,
            block=block,
            kernel=kernel,
            include_one_machine=include_one_machine,
            future=future,
            submitted_at=time.monotonic(),
        )
        with self._wakeup:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            self._pending.append(request)
            self._wakeup.notify_all()
        return future

    def cancel_pending(self, token: object) -> int:
        """Fail this session's parked request(s) with :class:`SessionCancelled`.

        Cancellation mid-batch: the request is removed from the pending set
        (the next flush simply fuses the survivors) and the parked session
        thread unwinds through its ``bound_block`` call.  Returns the
        number of requests cancelled (0 or 1 in practice — a session parks
        at most one request at a time).
        """
        with self._wakeup:
            mine = [request for request in self._pending if request.token is token]
            if not mine:
                return 0
            self._pending = [request for request in self._pending if request.token is not token]
            self.stats.n_cancelled += len(mine)
            self._wakeup.notify_all()
        for request in mine:
            request.future.set_exception(SessionCancelled("session cancelled while parked"))
        return len(mine)

    # ------------------------------------------------------------------ #
    #  the flush half
    # ------------------------------------------------------------------ #
    def _flush_reason(self, now: float) -> str | None:  # repro-lint: ignore[guarded-by] -- caller holds the lock (only called from _run's with-self._wakeup block)
        """The policy trigger that fires right now (caller holds the lock)."""
        if not self._pending:
            return None
        if sum(len(request.block) for request in self._pending) >= self.policy.max_batch_nodes:
            return "max-batch"
        if len(self._pending) >= max(1, self._active_sessions):
            return "all-parked"
        if now - self._pending[0].submitted_at >= self.policy.max_wait_s:
            return "timeout"
        return None

    def flush_now(self, reason: str = "forced") -> int:
        """Flush everything pending immediately; returns the request count.

        The deterministic entry used by tests (and by :meth:`close` via the
        drain) — the background thread uses the same execution path.
        """
        with self._wakeup:
            batch = self._pending
            self._pending = []
        if batch:
            if self._slot is not None:
                # route through the slot worker even on the synchronous
                # entry so kernel evaluation stays single-threaded, then
                # join: flush_now keeps its deterministic semantics
                self._slot.submit(lambda: self._execute(batch, reason)).result()
            else:
                self._execute(batch, reason)
        return len(batch)

    def _run(self) -> None:
        """Background loop: wait for a trigger, then flush outside the lock."""
        while True:
            with self._wakeup:
                while True:
                    if self._closed:
                        return
                    now = time.monotonic()
                    reason = self._flush_reason(now)
                    if reason is not None:
                        batch = self._pending
                        self._pending = []
                        break
                    if self._pending:
                        # sleep exactly until the oldest request times out
                        timeout = self.policy.max_wait_s - (
                            now - self._pending[0].submitted_at
                        )
                        self._wakeup.wait(timeout=max(timeout, 0.0))
                    else:
                        self._wakeup.wait()
            if self._slot is not None:
                # Off-pump-thread dispatch: hand the coalesced batch to the
                # single-slot worker and go straight back to collecting.
                # The bounded queue (depth 1) applies back-pressure: at most
                # one launch executing plus one parked.  _launch_group
                # handles launch failures internally, so the unjoined
                # ticket cannot swallow an error that matters.
                self._slot.submit(
                    lambda b=batch, r=reason: self._execute(b, r)
                )
            else:
                self._execute(batch, reason)

    def _execute(self, batch: list[_Pending], reason: str) -> None:
        """Fuse one batch of requests into one launch per instance group.

        Rows are concatenated in submission order per group, evaluated with
        the group's batched kernel, and the bound slices written back into
        each request's block — the same in-place contract as
        :func:`repro.bb.frontier.bound_block`.
        """
        stats = self.stats
        stats.n_flushes += 1
        stats.flush_reasons[reason] = stats.flush_reasons.get(reason, 0) + 1

        groups: dict[tuple, list[_Pending]] = {}
        for request in batch:
            groups.setdefault(request.group_key, []).append(request)

        for members in groups.values():
            rows = sum(len(request.block) for request in members)
            stats.n_launches += 1
            stats.n_requests += len(members)
            stats.n_rows += rows
            stats.max_requests_coalesced = max(stats.max_requests_coalesced, len(members))
            stats.max_rows_coalesced = max(stats.max_rows_coalesced, rows)
            self._launch_group(members)

    def _launch_group(self, members: list[_Pending]) -> None:
        """Launch one instance group, retrying failures up to the budget.

        Each retry is a fresh launch over the same members; once the budget
        is exhausted the members' futures carry the failure and their
        sessions fall back to local bounding (see
        :meth:`BatchingOffload.bound_block`).
        """
        attempts = 0
        while True:
            try:
                self._evaluate_with_timeout(members)
                return
            # repro-lint: ignore[bare-except] -- recovery site: a failed fused
            # launch is retried, then degraded to local bounding; never pass
            except Exception as exc:
                attempts += 1
                if attempts <= self.max_launch_retries:
                    with self._lock:
                        self.stats.n_retries += 1
                        self.stats.n_launches += 1
                    logger.warning(
                        "fused bounding launch failed (%s); retry %d/%d",
                        exc,
                        attempts,
                        self.max_launch_retries,
                    )
                    continue
                for request in members:
                    if not request.future.done():
                        request.future.set_exception(exc)
                return

    def _evaluate_with_timeout(self, members: list[_Pending]) -> None:
        """Run one fused launch, optionally under the per-launch watchdog.

        With ``launch_timeout_s`` set, the launch runs on a helper daemon
        thread and :class:`TimeoutError` is raised when it overruns; the
        straggler's late write-back is value-identical (same kernel, same
        rows) and its future updates are ``done()``-guarded no-ops.
        """
        if self.launch_timeout_s is None:
            self._evaluate_group(members)
            return
        failure: list[BaseException] = []

        def _target() -> None:
            try:
                self._evaluate_group(members)
            # repro-lint: ignore[bare-except] -- recovery site: the launch
            # error crosses back to _launch_group via the failure list
            except Exception as exc:
                failure.append(exc)

        worker = threading.Thread(target=_target, name="bound-launch", daemon=True)
        worker.start()
        worker.join(timeout=self.launch_timeout_s)
        if worker.is_alive():
            raise TimeoutError(
                f"bounding launch exceeded launch_timeout_s={self.launch_timeout_s}"
            )
        if failure:
            raise failure[0]

    def _evaluate_group(self, members: list[_Pending]) -> None:
        """One fused kernel launch over every block of one instance group.

        Future updates are ``done()``-guarded: after a watchdog timeout the
        members may already carry a result/exception, and a straggler
        launch finishing late must not raise ``InvalidStateError``.
        """
        launch_index = next(self._launch_counter)
        hook = self.launch_hook
        if hook is not None:
            hook(launch_index)
        first = members[0]
        kernel = get_batch_kernel(first.kernel)
        started = time.perf_counter()
        if len(members) == 1:
            block = first.block
            bounds = kernel(
                first.data,
                block.scheduled_mask,
                block.release,
                include_one_machine=first.include_one_machine,
            )
            wall = time.perf_counter() - started
            block.lower_bound[:] = bounds
            if not first.future.done():
                first.future.set_result((block.lower_bound, 0.0, wall))
            return
        mask = np.concatenate([request.block.scheduled_mask for request in members])
        release = np.concatenate([request.block.release for request in members])
        bounds = kernel(
            first.data, mask, release, include_one_machine=first.include_one_machine
        )
        wall = time.perf_counter() - started
        total = mask.shape[0]
        offset = 0
        for request in members:
            block = request.block
            count = len(block)
            block.lower_bound[:] = bounds[offset : offset + count]
            offset += count
            # apportion the measured kernel wall time by row share
            if not request.future.done():
                request.future.set_result(
                    (block.lower_bound, 0.0, wall * (count / total))
                )

    # ------------------------------------------------------------------ #
    #  degradation accounting
    # ------------------------------------------------------------------ #
    def note_degraded(self, token: object, reason: str) -> None:
        """Record that ``token``'s session fell back to local bounding.

        Called by :class:`BatchingOffload` when a request's future carries
        a launch failure; bumps ``DispatchStats.n_degraded``, remembers the
        reason for :meth:`degraded_for` and fires ``on_degraded``.
        """
        with self._lock:
            self.stats.n_degraded += 1
            self._degraded_tokens[id(token)] = reason
        callback = self.on_degraded
        if callback is not None:
            callback(token, reason)

    def degraded_for(self, token: object) -> str | None:
        """The degradation reason recorded for ``token`` (``None`` if none)."""
        with self._lock:
            return self._degraded_tokens.get(id(token))


class BatchingOffload:
    """The async-aware offload backend: ``bound_block`` parks on the dispatcher.

    Implements the driver's offload contract (``bound_block(block,
    siblings) -> (bounds, simulated_s, measured_s)``) by submitting every
    batch to a :class:`BatchDispatcher` and blocking the calling session
    thread on the returned future until the dispatcher flushes.  Semantics
    match :class:`~repro.bb.driver.LocalBounding` exactly:

    * sibling blocks of complete schedules short-circuit locally (their
      makespans were filled in at branch time — no kernel work exists to
      coalesce, and the serial engines issue no launch there either);
    * empty blocks return immediately;
    * all other blocks produce bit-identical bounds via the dispatcher's
      fused launch, written into ``block.lower_bound`` in place.

    **Graceful degradation**: when a parked future carries a launch failure
    (the dispatcher exhausted its retries — see
    ``BatchDispatcher.max_launch_retries``), the offload does not fail the
    solve.  It evaluates the block locally with the same batched kernel a
    stand-alone solve uses (bit-identical bounds) and stays local for the
    rest of the session: correctness is preserved, coalescing is lost.
    The fallback is recorded in ``DispatchStats.n_degraded`` and via the
    dispatcher's ``on_degraded`` callback.  Pass ``allow_degraded=False``
    to propagate launch failures instead (fail-fast).

    ``bound_nodes`` (the object-layout entry) is deliberately unsupported:
    service sessions run the block layout, whose arrays concatenate into a
    fused launch without re-packing.
    """

    def __init__(
        self,
        dispatcher: BatchDispatcher,
        data: LowerBoundData,
        token: object,
        kernel: str = "v2",
        include_one_machine: bool = False,
        allow_degraded: bool = True,
    ):
        self.dispatcher = dispatcher
        self.data = data
        self.token = token
        self.kernel = kernel
        self.include_one_machine = include_one_machine
        self.allow_degraded = allow_degraded
        self._degraded_reason: str | None = None

    @property
    def degraded(self) -> bool:
        """True once this session fell back to local (uncoalesced) bounding."""
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> str | None:
        """Why the session degraded (``None`` while still coalescing)."""
        return self._degraded_reason

    def _bound_locally(self, block):
        """LocalBounding semantics: same batched kernel, no dispatcher."""
        kernel = get_batch_kernel(self.kernel)
        started = time.perf_counter()
        bounds = kernel(
            self.data,
            block.scheduled_mask,
            block.release,
            include_one_machine=self.include_one_machine,
        )
        wall = time.perf_counter() - started
        block.lower_bound[:] = bounds
        return block.lower_bound, 0.0, wall

    def bound_nodes(self, nodes):
        """Unsupported: service sessions use the block layout only."""
        raise NotImplementedError(
            "the service offload batches NodeBlocks; run sessions with layout='block'"
        )

    def bound_block(self, block, siblings: bool = False):
        """Bound one block through the dispatcher (parks until the flush).

        Returns the ``(bounds, simulated_s, measured_s)`` triple of the
        offload contract; raises :class:`SessionCancelled` when the session
        was cancelled while parked.
        """
        if len(block) == 0:
            return np.zeros(0, dtype=np.int64), 0.0, 0.0
        if siblings and int(block.depth[0]) == block.n_jobs:
            # complete-schedule siblings: bounds ARE the makespans, set at
            # branch time (mirror of frontier.bound_block's fast path)
            return block.lower_bound, 0.0, 0.0
        if self._degraded_reason is not None:
            return self._bound_locally(block)
        future = self.dispatcher.submit(
            self.token,
            self.data,
            block,
            kernel=self.kernel,
            include_one_machine=self.include_one_machine,
        )
        try:
            return future.result()
        except SessionCancelled:
            raise
        # repro-lint: ignore[bare-except] -- recovery site: launch failure
        # degrades this session to local bounding instead of failing it
        except Exception as exc:
            if not self.allow_degraded:
                raise
            reason = f"{type(exc).__name__}: {exc}"
            self._degraded_reason = reason
            logger.warning(
                "session %r degrading to local bounding: %s", self.token, reason
            )
            self.dispatcher.note_degraded(self.token, reason)
            return self._bound_locally(block)
