"""Fair-share admission scheduling for the solve service.

The service admits at most ``max_active_sessions`` concurrent solves; the
rest wait here.  Waiting entries are kept in **per-client FIFO queues**
and drained **round-robin across clients**: a client that floods the
service with a hundred requests gets one slot per scheduling cycle, the
same as a client that submitted one — its own requests still run in
submission order.

The scheduler is also the service's backpressure valve: it is bounded
(``max_queued``), and :meth:`FairShareScheduler.push` raises
:class:`SchedulerFull` when the bound is hit — the service turns that
into an ``overloaded`` wire reply instead of queueing unboundedly.

The structure is synchronous and unlocked; the owning
:class:`~repro.service.service.SolveService` only touches it from the
event-loop thread.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Iterator, Optional

__all__ = ["SchedulerFull", "FairShareScheduler"]


class SchedulerFull(Exception):
    """The bounded waiting queue is at capacity (backpressure signal).

    Carries ``queued`` (entries waiting when the push was rejected) and
    ``limit`` (the bound) so the service can fill the ``overloaded``
    reply's retry hints.
    """

    def __init__(self, queued: int, limit: int):
        super().__init__(f"scheduler full ({queued}/{limit} queued)")
        self.queued = queued
        self.limit = limit


class FairShareScheduler:
    """Bounded round-robin-across-clients, FIFO-within-client queue.

    Parameters
    ----------
    max_queued:
        Total entries allowed to wait across ALL clients; pushes beyond it
        raise :class:`SchedulerFull`.

    Fairness invariant: successive :meth:`pop` calls cycle through the
    clients that have waiting entries, taking one entry per client per
    cycle; a client's own entries pop in their push order.  The cursor
    survives pushes, so a newly arriving client cannot jump the cycle.
    """

    def __init__(self, max_queued: int = 64):
        if max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        self.max_queued = max_queued
        self._queues: "OrderedDict[str, deque[Any]]" = OrderedDict()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        """Iterate waiting entries (round-robin order, non-destructive)."""
        queues = [list(q) for q in self._queues.values()]
        depth = 0
        while any(len(q) > depth for q in queues):
            for q in queues:
                if len(q) > depth:
                    yield q[depth]
            depth += 1

    def push(self, client_id: str, item: Any) -> None:
        """Enqueue ``item`` for ``client_id``; raises :class:`SchedulerFull`."""
        if self._size >= self.max_queued:
            raise SchedulerFull(self._size, self.max_queued)
        queue = self._queues.get(client_id)
        if queue is None:
            queue = deque()
            self._queues[client_id] = queue
        queue.append(item)
        self._size += 1

    def pop(self) -> Optional[Any]:
        """Dequeue the next entry by fair-share order; ``None`` when empty.

        Takes the front entry of the least-recently-served client's queue,
        then rotates that client to the back of the cycle (clients whose
        queue drains leave the cycle entirely).
        """
        if self._size == 0:
            return None
        client_id, queue = next(iter(self._queues.items()))
        item = queue.popleft()
        self._size -= 1
        del self._queues[client_id]
        if queue:
            self._queues[client_id] = queue  # re-insert at the back: rotate
        return item
