"""Setup shim so `pip install -e .` works with the offline legacy toolchain."""
from setuptools import setup

setup()
